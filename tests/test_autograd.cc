#include "autograd/ops.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "base/parallel.h"
#include "tensor/tensor_ops.h"

namespace units::autograd {
namespace {

namespace ag = ::units::autograd;

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::FromVector({2}, {1, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.numel(), 2);
  EXPECT_FALSE(v.has_grad());
}

TEST(VariableTest, UndefinedByDefault) {
  Variable v;
  EXPECT_FALSE(v.defined());
}

TEST(VariableTest, BackwardThroughAdd) {
  Variable a(Tensor::FromVector({2}, {1, 2}), true);
  Variable b(Tensor::FromVector({2}, {3, 4}), true);
  Variable loss = ag::SumAll(ag::Add(a, b));
  loss.Backward();
  EXPECT_EQ(a.grad()[0], 1.0f);
  EXPECT_EQ(a.grad()[1], 1.0f);
  EXPECT_EQ(b.grad()[0], 1.0f);
}

TEST(VariableTest, GradAccumulatesAcrossBackwards) {
  Variable a(Tensor::FromVector({1}, {2}), true);
  ag::SumAll(ag::Square(a)).Backward();
  EXPECT_EQ(a.grad()[0], 4.0f);
  ag::SumAll(ag::Square(a)).Backward();
  EXPECT_EQ(a.grad()[0], 8.0f);  // accumulated
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
}

TEST(VariableTest, DiamondGraphSumsGradients) {
  // loss = a*a + a*a: each path contributes 2a.
  Variable a(Tensor::FromVector({1}, {3}), true);
  Variable sq = ag::Square(a);
  Variable loss = ag::SumAll(ag::Add(sq, sq));
  loss.Backward();
  EXPECT_EQ(a.grad()[0], 12.0f);  // d/da (2a^2) = 4a
}

TEST(VariableTest, SharedSubexpressionUsedTwice) {
  // loss = sum(x * x_detached-like separate paths) checks correct topo order.
  Variable x(Tensor::FromVector({2}, {1, 2}), true);
  Variable y = ag::Mul(x, x);        // x^2
  Variable z = ag::Mul(y, x);        // x^3
  ag::SumAll(z).Backward();
  EXPECT_NEAR(x.grad()[0], 3.0f, 1e-5);   // 3x^2 at 1
  EXPECT_NEAR(x.grad()[1], 12.0f, 1e-5);  // 3x^2 at 2
}

TEST(VariableTest, DetachCutsGraph) {
  Variable a(Tensor::FromVector({1}, {2}), true);
  Variable d = ag::Square(a).Detach();
  EXPECT_FALSE(d.requires_grad());
  Variable b(Tensor::FromVector({1}, {5}), true);
  ag::SumAll(ag::Mul(d, b)).Backward();
  EXPECT_FALSE(a.has_grad());
  EXPECT_EQ(b.grad()[0], 4.0f);
}

TEST(NoGradTest, GuardSuppressesGraph) {
  Variable a(Tensor::FromVector({1}, {2}), true);
  {
    NoGradGuard guard;
    Variable y = ag::Square(a);
    EXPECT_FALSE(y.requires_grad());
  }
  Variable y = ag::Square(a);
  EXPECT_TRUE(y.requires_grad());
}

TEST(NoGradTest, GuardNests) {
  EXPECT_TRUE(GradEnabled());
  {
    NoGradGuard g1;
    EXPECT_FALSE(GradEnabled());
    {
      NoGradGuard g2;
      EXPECT_FALSE(GradEnabled());
    }
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
}

TEST(OpsTest, BroadcastAddGradReduces) {
  Variable a(Tensor::Zeros({2, 3}), true);
  Variable bias(Tensor::Zeros({3}), true);
  ag::SumAll(ag::Add(a, bias)).Backward();
  EXPECT_EQ(bias.grad().shape(), (Shape{3}));
  EXPECT_EQ(bias.grad()[0], 2.0f);  // summed over the batch of 2
}

TEST(OpsTest, MatMulGradients) {
  Variable a(Tensor::FromVector({1, 2}, {1, 2}), true);
  Variable b(Tensor::FromVector({2, 1}, {3, 4}), true);
  ag::SumAll(ag::MatMul(a, b)).Backward();
  EXPECT_EQ(a.grad().At({0, 0}), 3.0f);
  EXPECT_EQ(a.grad().At({0, 1}), 4.0f);
  EXPECT_EQ(b.grad().At({0, 0}), 1.0f);
  EXPECT_EQ(b.grad().At({1, 0}), 2.0f);
}

TEST(OpsTest, ReluGradMasksNegative) {
  Variable x(Tensor::FromVector({3}, {-1, 0, 2}), true);
  ag::SumAll(ag::Relu(x)).Backward();
  EXPECT_EQ(x.grad()[0], 0.0f);
  EXPECT_EQ(x.grad()[2], 1.0f);
}

TEST(OpsTest, SoftmaxOutputAndGradSum) {
  Variable x(Tensor::FromVector({1, 3}, {1, 2, 3}), true);
  Variable s = ag::Softmax(x, 1);
  // Rows sum to one.
  EXPECT_NEAR(ops::SumAll(s.data()), 1.0f, 1e-5);
  // d(sum softmax)/dx = 0 since the output always sums to 1.
  ag::SumAll(s).Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad()[i], 0.0f, 1e-5);
  }
}

TEST(OpsTest, CrossEntropyMatchesManual) {
  Variable logits(Tensor::FromVector({2, 3}, {1, 2, 3, 3, 2, 1}), true);
  const std::vector<int64_t> targets = {2, 0};
  Variable loss = ag::CrossEntropyLoss(logits, targets);
  // Both rows have the target at the max logit; loss = -log softmax(max).
  const float expected =
      -std::log(std::exp(3.0f) /
                (std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f)));
  EXPECT_NEAR(loss.item(), expected, 1e-5);
  loss.Backward();
  // Gradient of CE wrt logits: softmax - onehot, scaled by 1/N.
  const Tensor sm = ops::Softmax(logits.data(), 1);
  EXPECT_NEAR(logits.grad().At({0, 2}), (sm.At({0, 2}) - 1.0f) / 2.0f, 1e-5);
  EXPECT_NEAR(logits.grad().At({0, 0}), sm.At({0, 0}) / 2.0f, 1e-5);
}

TEST(OpsTest, MseLossValueAndGrad) {
  Variable pred(Tensor::FromVector({2}, {1, 3}), true);
  Variable target(Tensor::FromVector({2}, {0, 1}));
  Variable loss = ag::MseLoss(pred, target);
  EXPECT_NEAR(loss.item(), (1.0f + 4.0f) / 2.0f, 1e-6);
  loss.Backward();
  EXPECT_NEAR(pred.grad()[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(pred.grad()[1], 2.0f * 2.0f / 2.0f, 1e-6);
}

TEST(OpsTest, L1LossValue) {
  Variable pred(Tensor::FromVector({2}, {1, -3}), true);
  Variable target(Tensor::FromVector({2}, {0, 1}));
  EXPECT_NEAR(ag::L1Loss(pred, target).item(), (1.0f + 4.0f) / 2.0f, 1e-6);
}

TEST(OpsTest, MaskedMseIgnoresUnmasked) {
  Variable pred(Tensor::FromVector({4}, {1, 1, 1, 1}), true);
  Variable target(Tensor::FromVector({4}, {0, 0, 5, 9}));
  Tensor mask = Tensor::FromVector({4}, {1, 0, 1, 0});
  Variable loss = ag::MaskedMseLoss(pred, target, mask);
  // Only positions 0 and 2 count: ((1)^2 + (−4)^2) / 2.
  EXPECT_NEAR(loss.item(), (1.0f + 16.0f) / 2.0f, 1e-5);
  loss.Backward();
  EXPECT_EQ(pred.grad()[1], 0.0f);
  EXPECT_EQ(pred.grad()[3], 0.0f);
  EXPECT_NE(pred.grad()[0], 0.0f);
}

TEST(OpsTest, MaskedMseEmptyMaskIsZero) {
  Variable pred(Tensor::Ones({3}), true);
  Variable target(Tensor::Zeros({3}));
  Tensor mask = Tensor::Zeros({3});
  EXPECT_EQ(ag::MaskedMseLoss(pred, target, mask).item(), 0.0f);
}

TEST(OpsTest, MaxPoolOverTimeRoutesGradToArgmax) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 9, 3, 2});
  Variable v(x, true);
  Variable pooled = ag::MaxPoolOverTime(v);
  EXPECT_EQ(pooled.shape(), (Shape{1, 1}));
  EXPECT_EQ(pooled.data()[0], 9.0f);
  ag::SumAll(pooled).Backward();
  EXPECT_EQ(v.grad().At({0, 0, 0}), 0.0f);
  EXPECT_EQ(v.grad().At({0, 0, 1}), 1.0f);
}

TEST(OpsTest, SliceGradEmbedsIntoZeros) {
  Variable x(Tensor::FromVector({4}, {1, 2, 3, 4}), true);
  ag::SumAll(ag::Slice(x, 0, 1, 2)).Backward();
  EXPECT_EQ(x.grad()[0], 0.0f);
  EXPECT_EQ(x.grad()[1], 1.0f);
  EXPECT_EQ(x.grad()[2], 1.0f);
  EXPECT_EQ(x.grad()[3], 0.0f);
}

TEST(OpsTest, ConcatSplitsGradBack) {
  Variable a(Tensor::FromVector({1, 2}, {1, 2}), true);
  Variable b(Tensor::FromVector({1, 3}, {3, 4, 5}), true);
  Variable c = ag::Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{1, 5}));
  // Weight each output element by its index to verify routing.
  Tensor w = Tensor::FromVector({1, 5}, {1, 2, 3, 4, 5});
  ag::SumAll(ag::Mul(c, ag::Constant(w))).Backward();
  EXPECT_EQ(a.grad().At({0, 1}), 2.0f);
  EXPECT_EQ(b.grad().At({0, 0}), 3.0f);
  EXPECT_EQ(b.grad().At({0, 2}), 5.0f);
}

TEST(OpsTest, GatherRowsGradScatters) {
  Variable x(Tensor::FromVector({3, 1}, {1, 2, 3}), true);
  ag::SumAll(ag::GatherRows(x, {0, 0, 2})).Backward();
  EXPECT_EQ(x.grad().At({0, 0}), 2.0f);  // row 0 used twice
  EXPECT_EQ(x.grad().At({1, 0}), 0.0f);
  EXPECT_EQ(x.grad().At({2, 0}), 1.0f);
}

TEST(OpsTest, Conv1dKnownResult) {
  // Single-channel moving-sum kernel [1, 1, 1], causal padding.
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::Ones({1, 1, 3});
  Variable xv(x, true);
  Variable wv(w, true);
  Variable out = ag::Conv1d(xv, wv, Variable(), 1, 2, 0);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 4}));
  EXPECT_EQ(out.data()[0], 1.0f);   // 0+0+1
  EXPECT_EQ(out.data()[1], 3.0f);   // 0+1+2
  EXPECT_EQ(out.data()[2], 6.0f);   // 1+2+3
  EXPECT_EQ(out.data()[3], 9.0f);   // 2+3+4
}

TEST(OpsTest, Conv1dBiasBroadcasts) {
  Tensor x = Tensor::Zeros({2, 1, 5});
  Tensor w = Tensor::Zeros({3, 1, 1});
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  Variable out = ag::Conv1d(Variable(x), Variable(w), Variable(b), 1, 0, 0);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 5}));
  EXPECT_EQ(out.data().At({0, 0, 0}), 1.0f);
  EXPECT_EQ(out.data().At({1, 2, 4}), 3.0f);
}

TEST(OpsTest, TransposeGradTransposesBack) {
  Variable x(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  Variable t = ag::Transpose(x, 0, 1);
  Tensor w = Tensor::FromVector({3, 2}, {1, 0, 0, 0, 0, 2});
  ag::SumAll(ag::Mul(t, ag::Constant(w))).Backward();
  EXPECT_EQ(x.grad().At({0, 0}), 1.0f);
  EXPECT_EQ(x.grad().At({1, 2}), 2.0f);
}

TEST(OpsTest, L2NormalizeUnitNorm) {
  Variable x(Tensor::FromVector({2, 2}, {3, 4, 6, 8}), true);
  Variable n = ag::L2Normalize(x, 1);
  EXPECT_NEAR(n.data().At({0, 0}), 0.6f, 1e-5);
  EXPECT_NEAR(n.data().At({0, 1}), 0.8f, 1e-5);
  EXPECT_NEAR(n.data().At({1, 0}), 0.6f, 1e-5);
}

TEST(OpsTest, MeanPoolOverTime) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Variable pooled = ag::MeanPoolOverTime(Variable(x));
  EXPECT_EQ(pooled.shape(), (Shape{1, 1}));
  EXPECT_NEAR(pooled.data()[0], 2.5f, 1e-6);
}

TEST(OpsTest, NoNonFiniteInLongChain) {
  Rng rng(11);
  Variable x(Tensor::RandNormal({4, 8}, &rng), true);
  Variable h = x;
  for (int i = 0; i < 20; ++i) {
    h = ag::Tanh(ag::MulScalar(h, 1.1f));
  }
  Variable loss = ag::MeanAll(ag::Square(h));
  loss.Backward();
  EXPECT_FALSE(ops::HasNonFinite(x.grad()));
}

// ---------------------------------------------------------------------------
// Backward engine determinism (UNITS_BACKWARD serial vs parallel, 1 vs 8
// threads). The contract is bitwise equality, so every comparison below is
// exact float equality against the serial 1-thread oracle.
// ---------------------------------------------------------------------------

/// Pins UNITS_BACKWARD and the pool size for one engine run; restores the
/// default (env unset, default thread count) on scope exit.
class ScopedEngine {
 public:
  ScopedEngine(const char* mode, int threads) {
    if (mode == nullptr) {
      unsetenv("UNITS_BACKWARD");
    } else {
      setenv("UNITS_BACKWARD", mode, /*overwrite=*/1);
    }
    base::SetNumThreads(threads);
  }
  ~ScopedEngine() {
    unsetenv("UNITS_BACKWARD");
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

/// Builds a fresh graph (pushing its leaves), returns the scalar loss. Must
/// be deterministic so independent runs produce comparable graphs.
using GraphBuilder = std::function<Variable(std::vector<Variable>*)>;

std::vector<std::vector<float>> GradsUnder(const char* mode, int threads,
                                           const GraphBuilder& build) {
  ScopedEngine engine(mode, threads);
  std::vector<Variable> leaves;
  Variable loss = build(&leaves);
  loss.Backward();
  std::vector<std::vector<float>> grads;
  grads.reserve(leaves.size());
  for (const Variable& leaf : leaves) {
    const Tensor& g = leaf.grad();
    grads.emplace_back(g.data(), g.data() + g.numel());
  }
  return grads;
}

void ExpectEngineInvariantGrads(const GraphBuilder& build) {
  const auto baseline = GradsUnder("serial", 1, build);
  const struct {
    const char* mode;  // nullptr = unset (auto)
    int threads;
  } kConfigs[] = {
      {"serial", 8}, {"parallel", 1}, {"parallel", 4}, {"parallel", 8},
      {nullptr, 8},
  };
  for (const auto& cfg : kConfigs) {
    const auto got = GradsUnder(cfg.mode, cfg.threads, build);
    ASSERT_EQ(got.size(), baseline.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), baseline[i].size()) << "leaf " << i;
      for (size_t j = 0; j < got[i].size(); ++j) {
        ASSERT_EQ(got[i][j], baseline[i][j])
            << "mode=" << (cfg.mode ? cfg.mode : "auto")
            << " threads=" << cfg.threads << " leaf=" << i << " elem=" << j;
      }
    }
  }
}

TEST(BackwardEngineTest, ModeFromEnvParsing) {
  unsetenv("UNITS_BACKWARD");
  EXPECT_EQ(BackwardModeFromEnv(), BackwardMode::kAuto);
  setenv("UNITS_BACKWARD", "serial", 1);
  EXPECT_EQ(BackwardModeFromEnv(), BackwardMode::kSerial);
  setenv("UNITS_BACKWARD", "parallel", 1);
  EXPECT_EQ(BackwardModeFromEnv(), BackwardMode::kParallel);
  setenv("UNITS_BACKWARD", "garbage", 1);
  EXPECT_EQ(BackwardModeFromEnv(), BackwardMode::kAuto);
  unsetenv("UNITS_BACKWARD");
}

TEST(BackwardEngineTest, DiamondGraphBitwiseInvariant) {
  ExpectEngineInvariantGrads([](std::vector<Variable>* leaves) {
    Variable a(Tensor::FromVector({3}, {3, -1, 0.5f}), true);
    leaves->push_back(a);
    Variable sq = ag::Square(a);
    return ag::SumAll(ag::Add(sq, sq));
  });
}

TEST(BackwardEngineTest, SharedSubgraphBitwiseInvariant) {
  ExpectEngineInvariantGrads([](std::vector<Variable>* leaves) {
    Variable x(Tensor::FromVector({2}, {1.25f, -2.5f}), true);
    leaves->push_back(x);
    Variable y = ag::Mul(x, x);  // duplicate parent edge: x held back
    Variable z = ag::Mul(y, x);  // until both contributions are in
    return ag::SumAll(z);
  });
}

TEST(BackwardEngineTest, MultiBranchFanOutBitwiseInvariant) {
  // The UniTS shape: one input fanned out to M independent encoder-like
  // branches, fused, reduced. Branches are the parallelism the engine
  // exploits; their contributions to x must still reduce in serial order.
  ExpectEngineInvariantGrads([](std::vector<Variable>* leaves) {
    Rng rng(1234);
    Variable x(Tensor::RandNormal({4, 16}, &rng), true);
    leaves->push_back(x);
    std::vector<Variable> branches;
    for (int m = 0; m < 6; ++m) {
      Variable w(Tensor::RandNormal({16, 8}, &rng), true);
      leaves->push_back(w);
      branches.push_back(ag::Tanh(ag::MatMul(x, w)));
    }
    Variable fused = ag::Concat(branches, 1);
    return ag::MeanAll(ag::Square(fused));
  });
}

TEST(BackwardEngineTest, DeepChainBitwiseInvariant) {
  // Fully serial dependency chain: the engine degenerates to one ready node
  // at a time and must still match the sweep exactly.
  ExpectEngineInvariantGrads([](std::vector<Variable>* leaves) {
    Rng rng(7);
    Variable x(Tensor::RandNormal({4, 8}, &rng), true);
    leaves->push_back(x);
    Variable h = x;
    for (int i = 0; i < 25; ++i) {
      h = ag::Tanh(ag::MulScalar(h, 1.05f));
    }
    return ag::MeanAll(ag::Square(h));
  });
}

TEST(BackwardEngineTest, BroadcastAndReductionBitwiseInvariant) {
  ExpectEngineInvariantGrads([](std::vector<Variable>* leaves) {
    Rng rng(42);
    Variable a(Tensor::RandNormal({3, 5}, &rng), true);
    Variable bias(Tensor::RandNormal({5}, &rng), true);
    leaves->push_back(a);
    leaves->push_back(bias);
    Variable h = ag::Relu(ag::Add(a, bias));
    return ag::SumAll(ag::Mul(h, h));
  });
}

TEST(BackwardEngineTest, ScalarLeafRootRunsUnderParallelEngine) {
  ScopedEngine engine("parallel", 8);
  Variable a(Tensor::Ones({1}), true);
  a.Backward();  // single-node graph, no backward_fn
  EXPECT_EQ(a.grad()[0], 1.0f);
}

TEST(BackwardEngineTest, AccumulationAcrossPassesMatchesSerial) {
  // Pass 2 reuses an interior node that still carries pass-1 gradient; the
  // serial sweep folds the pre-existing grad in before running backward_fn,
  // and the parallel reduction must do the same.
  auto run_two_passes = [](const char* mode, int threads) {
    ScopedEngine engine(mode, threads);
    Variable x(Tensor::FromVector({2}, {1.5f, -0.75f}), true);
    Variable y = ag::Square(x);
    ag::SumAll(y).Backward();
    ag::SumAll(ag::Mul(y, y)).Backward();
    return std::vector<float>{x.grad()[0], x.grad()[1]};
  };
  const auto baseline = run_two_passes("serial", 1);
  for (int threads : {1, 8}) {
    const auto got = run_two_passes("parallel", threads);
    EXPECT_EQ(got[0], baseline[0]) << "threads=" << threads;
    EXPECT_EQ(got[1], baseline[1]) << "threads=" << threads;
  }
}

TEST(BackwardEngineTest, ReentrantBackwardInsideBackwardFn) {
  ScopedEngine engine("parallel", 4);
  Variable a(Tensor::Ones({2}), true);
  float inner_grad = 0.0f;
  Variable node = Variable::MakeNode(
      Tensor::Ones({2}), {a}, [a, &inner_grad](const Tensor& g) {
        // An independent inner graph differentiated from inside a running
        // engine worker: must sweep serially and not disturb the outer run.
        Variable u(Tensor::FromVector({1}, {3.0f}), true);
        ag::SumAll(ag::Square(u)).Backward();
        inner_grad = u.grad()[0];
        a.AccumulateGrad(g);
      });
  ag::SumAll(node).Backward();
  EXPECT_EQ(inner_grad, 6.0f);
  EXPECT_EQ(a.grad()[0], 1.0f);
  EXPECT_EQ(a.grad()[1], 1.0f);
}

TEST(BackwardEngineTest, ExceptionFromBackwardFnPropagates) {
  ScopedEngine engine("parallel", 4);
  Variable a(Tensor::Ones({4}), true);
  Variable bad = Variable::MakeNode(
      Tensor::Ones({4}), {a},
      [](const Tensor&) { throw std::runtime_error("backward boom"); });
  Variable loss = ag::SumAll(bad);
  EXPECT_THROW(loss.Backward(), std::runtime_error);
}

}  // namespace
}  // namespace units::autograd
