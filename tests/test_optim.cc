#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/schedule.h"

namespace units::optim {
namespace {

namespace ag = ::units::autograd;

/// Convex quadratic loss (x - target)^2 summed.
Variable Quadratic(const Variable& x, const Tensor& target) {
  return ag::SumAll(ag::Square(ag::Sub(x, ag::Constant(target))));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x(Tensor::Zeros({3}), true);
  Tensor target = Tensor::FromVector({3}, {1, -2, 3});
  Sgd opt({x}, 0.1f);
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    Quadratic(x, target).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.data()[i], target[i], 1e-4);
  }
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Tensor target = Tensor::Full({1}, 10.0f);
  auto run = [&](float momentum) {
    Variable x(Tensor::Zeros({1}), true);
    Sgd opt({x}, 0.01f, momentum);
    for (int step = 0; step < 50; ++step) {
      opt.ZeroGrad();
      Quadratic(x, target).Backward();
      opt.Step();
    }
    return std::fabs(x.data()[0] - 10.0f);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable x(Tensor::Full({1}, 4.0f), true);
  Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  opt.ZeroGrad();
  ag::SumAll(ag::MulScalar(x, 0.0f)).Backward();
  opt.Step();
  EXPECT_LT(x.data()[0], 4.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable x(Tensor::Zeros({4}), true);
  Tensor target = Tensor::FromVector({4}, {0.5f, -0.5f, 2.0f, -3.0f});
  Adam opt({x}, 0.1f);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Quadratic(x, target).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.data()[i], target[i], 1e-2);
  }
}

TEST(AdamTest, HandlesIllConditionedScales) {
  // One coordinate's gradient is 1000x the other's; Adam's per-coordinate
  // scaling should still move both towards the target.
  Variable x(Tensor::Zeros({2}), true);
  Adam opt({x}, 0.05f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Variable a = ag::Slice(x, 0, 0, 1);
    Variable b = ag::Slice(x, 0, 1, 1);
    Variable loss = ag::Add(
        ag::MulScalar(ag::SumAll(ag::Square(ag::AddScalar(a, -1.0f))), 1000.0f),
        ag::SumAll(ag::Square(ag::AddScalar(b, -1.0f))));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 1.0f, 0.05f);
  EXPECT_NEAR(x.data()[1], 1.0f, 0.05f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Variable used(Tensor::Zeros({1}), true);
  Variable unused(Tensor::Full({1}, 5.0f), true);
  Adam opt({used, unused}, 0.1f);
  opt.ZeroGrad();
  Quadratic(used, Tensor::Ones({1})).Backward();
  opt.Step();
  EXPECT_EQ(unused.data()[0], 5.0f);
  EXPECT_NE(used.data()[0], 0.0f);
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  Variable x(Tensor::Zeros({3}), true);
  Tensor target = Tensor::FromVector({3}, {2, -1, 0.5f});
  RmsProp opt({x}, 0.05f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Quadratic(x, target).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.data()[i], target[i], 0.05f);
  }
}

TEST(RmsPropTest, AdaptsToGradientScale) {
  // Coordinates with wildly different gradient scales progress at
  // comparable speed thanks to the per-coordinate normalization.
  Variable x(Tensor::Zeros({2}), true);
  RmsProp opt({x}, 0.02f);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Variable a = ag::Slice(x, 0, 0, 1);
    Variable b = ag::Slice(x, 0, 1, 1);
    Variable loss = ag::Add(
        ag::MulScalar(ag::SumAll(ag::Square(ag::AddScalar(a, -1.0f))),
                      100.0f),
        ag::SumAll(ag::Square(ag::AddScalar(b, -1.0f))));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 1.0f, 0.1f);
  EXPECT_NEAR(x.data()[1], 1.0f, 0.1f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable x(Tensor::Zeros({2}), true);
  x.AccumulateGrad(Tensor::FromVector({2}, {0.3f, 0.4f}));  // norm 0.5
  const float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 0.5f, 1e-6);
  EXPECT_NEAR(x.grad()[0], 0.3f, 1e-6);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Variable x(Tensor::Zeros({2}), true);
  x.AccumulateGrad(Tensor::FromVector({2}, {3.0f, 4.0f}));  // norm 5
  const float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5);
}

TEST(ClipGradNormTest, GlobalNormAcrossParams) {
  Variable a(Tensor::Zeros({1}), true);
  Variable b(Tensor::Zeros({1}), true);
  a.AccumulateGrad(Tensor::Full({1}, 3.0f));
  b.AccumulateGrad(Tensor::Full({1}, 4.0f));
  ClipGradNorm({a, b}, 2.5f);  // global norm 5 -> scale 0.5
  EXPECT_NEAR(a.grad()[0], 1.5f, 1e-5);
  EXPECT_NEAR(b.grad()[0], 2.0f, 1e-5);
}

TEST(ScheduleTest, ConstantIsOne) {
  ConstantLr sched;
  EXPECT_EQ(sched.Multiplier(0), 1.0f);
  EXPECT_EQ(sched.Multiplier(1000), 1.0f);
}

TEST(ScheduleTest, CosineWarmupAndDecay) {
  CosineLr sched(100, 10, 0.0f);
  EXPECT_LT(sched.Multiplier(0), 0.2f);           // warming up
  EXPECT_NEAR(sched.Multiplier(9), 1.0f, 1e-5);   // warmup done
  EXPECT_NEAR(sched.Multiplier(55), 0.5f, 0.02f); // mid-decay
  EXPECT_NEAR(sched.Multiplier(100), 0.0f, 1e-5); // fully decayed
}

TEST(ScheduleTest, CosineFinalFraction) {
  CosineLr sched(10, 0, 0.1f);
  EXPECT_NEAR(sched.Multiplier(10), 0.1f, 1e-5);
  EXPECT_NEAR(sched.Multiplier(1000), 0.1f, 1e-5);
}

TEST(ScheduleTest, StepDecaysGeometrically) {
  StepLr sched(10, 0.5f);
  EXPECT_EQ(sched.Multiplier(0), 1.0f);
  EXPECT_EQ(sched.Multiplier(9), 1.0f);
  EXPECT_EQ(sched.Multiplier(10), 0.5f);
  EXPECT_EQ(sched.Multiplier(25), 0.25f);
}

TEST(ScheduleTest, StepExactPowersOfTwoAtLargeStepCounts) {
  // gamma = 0.5 halves exactly in binary floating point, so the multiplier
  // must equal 2^-k exactly — float-exponent pow is not guaranteed to
  // produce this (and differs between libm builds), integer exponentiation
  // by squaring is.
  StepLr sched(1, 0.5f);
  EXPECT_EQ(sched.Multiplier(20), std::ldexp(1.0f, -20));
  EXPECT_EQ(sched.Multiplier(63), std::ldexp(1.0f, -63));
  EXPECT_EQ(sched.Multiplier(126), std::ldexp(1.0f, -126));
  // Below float's normal range the product flushes toward zero identically
  // to repeated multiplication in double then one rounding to float.
  EXPECT_EQ(sched.Multiplier(1000), 0.0f);
}

TEST(ScheduleTest, StepMatchesRepeatedMultiplication) {
  // The contract fixed here: the multiplier at decay count k equals the
  // double-precision product gamma^k rounded once to float, for every k —
  // i.e. the schedule is exactly what a training loop multiplying per decay
  // would produce (no libm drift at large step counts).
  const float gamma = 0.77f;
  StepLr sched(7, gamma);
  double expected = 1.0;
  for (int64_t k = 0; k < 400; ++k) {
    const int64_t step = k * 7;  // first step of decay interval k
    ASSERT_EQ(sched.Multiplier(step), static_cast<float>(expected))
        << "decay count " << k;
    ASSERT_EQ(sched.Multiplier(step + 6), static_cast<float>(expected))
        << "last step of interval " << k;
    expected *= static_cast<double>(gamma);
  }
}

TEST(ScheduleTest, StepGammaOneStaysExactlyOne) {
  StepLr sched(3, 1.0f);
  EXPECT_EQ(sched.Multiplier(0), 1.0f);
  EXPECT_EQ(sched.Multiplier(3'000'000'000LL), 1.0f);
}

TEST(OptimizerTest, SetLrTakesEffect) {
  Variable x(Tensor::Zeros({1}), true);
  Sgd opt({x}, 1.0f);
  opt.set_lr(0.0f);
  opt.ZeroGrad();
  Quadratic(x, Tensor::Ones({1})).Backward();
  opt.Step();
  EXPECT_EQ(x.data()[0], 0.0f);  // lr 0 => no movement
}

}  // namespace
}  // namespace units::optim
