// Differential verification of the packed int8 GEMM
// (tensor/gemm_int8.{h,cc} + gemm_int8_avx2.cc): a seeded 300-shape fuzz
// sweep against the naive int32-accumulate oracle demanding EXACT integer
// equality (integer arithmetic has no reassociation error, so the blocked/
// SIMD path must match the oracle bit for bit), strided and transposed
// operand sources, zero-size edges, micro-tile boundary shapes,
// saturation-adjacent edge values (a=64 against b in {+127, -128, -127}),
// 1-vs-8-thread bitwise determinism, and the fused dequantize epilogue
// against a straightforward reference.

#include "tensor/gemm_int8.h"

#include <array>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"

namespace units::gemm {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() {
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

/// Scoped UNITS_GEMM_INT8 override restoring the previous value on exit.
class Int8EnvGuard {
 public:
  explicit Int8EnvGuard(const char* value) {
    const char* prev = getenv("UNITS_GEMM_INT8");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
    if (value != nullptr) {
      setenv("UNITS_GEMM_INT8", value, 1);
    } else {
      unsetenv("UNITS_GEMM_INT8");
    }
  }
  ~Int8EnvGuard() {
    if (had_prev_) {
      setenv("UNITS_GEMM_INT8", prev_.c_str(), 1);
    } else {
      unsetenv("UNITS_GEMM_INT8");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

std::vector<uint8_t> RandActivations(Rng* rng, int64_t count) {
  std::vector<uint8_t> v(static_cast<size_t>(count));
  for (auto& x : v) {
    x = static_cast<uint8_t>(rng->UniformInt(int64_t{0}, int64_t{kActQMax}));
  }
  return v;
}

std::vector<int8_t> RandWeights(Rng* rng, int64_t count) {
  std::vector<int8_t> v(static_cast<size_t>(count));
  for (auto& x : v) {
    x = static_cast<int8_t>(rng->UniformInt(int64_t{-128}, int64_t{127}));
  }
  return v;
}

/// Packed path (contiguous operands) vs the naive oracle: exact match.
void ExpectPackedMatchesNaive(int64_t m, int64_t k, int64_t n,
                              const std::vector<uint8_t>& a,
                              const std::vector<int8_t>& b,
                              const std::string& label) {
  const PackedInt8B packed = PackBInt8(b.data(), n, k, n);
  std::vector<int32_t> got(static_cast<size_t>(m * n), -1);
  std::vector<int32_t> ref(static_cast<size_t>(m * n), -1);
  Int8Gemm(m, n, a.data(), k, packed, got.data());
  NaiveInt8Gemm(m, k, n, a.data(), k, b.data(), n, ref.data());
  ASSERT_EQ(got, ref) << label;
}

TEST(Int8GemmOracleTest, FuzzSweepMatchesNaiveExactly) {
  Rng rng(812);
  const std::vector<int64_t> dims = {1,  2,  3,  4,  5,  7,  8,  9,
                                     15, 16, 17, 31, 32, 33, 63, 64,
                                     65, 95, 96, 97, 127, 128, 129};
  for (int iter = 0; iter < 300; ++iter) {
    const int64_t m = dims[rng.UniformInt(dims.size())];
    const int64_t k = dims[rng.UniformInt(dims.size())];
    const int64_t n = dims[rng.UniformInt(dims.size())];
    const auto a = RandActivations(&rng, m * k);
    const auto b = RandWeights(&rng, k * n);
    ExpectPackedMatchesNaive(m, k, n, a, b,
                             "m=" + std::to_string(m) + " k=" +
                                 std::to_string(k) + " n=" + std::to_string(n));
    if (HasFatalFailure()) {
      break;
    }
  }
}

TEST(Int8GemmOracleTest, StridedAndTransposedSources) {
  // A and B packed out of larger parent buffers (lda > k, ldb > n), the
  // pattern a transposed or sliced view produces once materialized.
  Rng rng(813);
  const int64_t m = 21, k = 37, n = 29;
  const int64_t lda = k + 11, ldb = n + 5;
  const auto abuf = RandActivations(&rng, m * lda);
  const auto bbuf = RandWeights(&rng, k * ldb);
  const PackedInt8B packed = PackBInt8(bbuf.data(), ldb, k, n);
  std::vector<int32_t> got(static_cast<size_t>(m * n));
  std::vector<int32_t> ref(static_cast<size_t>(m * n));
  Int8Gemm(m, n, abuf.data(), lda, packed, got.data());
  NaiveInt8Gemm(m, k, n, abuf.data(), lda, bbuf.data(), ldb, ref.data());
  EXPECT_EQ(got, ref);

  // Explicit transpose: C = A * B^T computed by materializing B^T, checked
  // against a transposed naive walk of the untransposed B.
  const auto bsq = RandWeights(&rng, k * k);
  std::vector<int8_t> bt(static_cast<size_t>(k * k));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      bt[j * k + i] = bsq[i * k + j];
    }
  }
  const PackedInt8B packed_t = PackBInt8(bt.data(), k, k, k);
  std::vector<int32_t> got_t(static_cast<size_t>(m * k));
  Int8Gemm(m, k, abuf.data(), lda, packed_t, got_t.data());
  std::vector<int32_t> ref_t(static_cast<size_t>(m * k), 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(abuf[i * lda + p]) *
             static_cast<int32_t>(bsq[j * k + p]);
      }
      ref_t[i * k + j] = s;
    }
  }
  EXPECT_EQ(got_t, ref_t);
}

TEST(Int8GemmOracleTest, ZeroSizeEdges) {
  Rng rng(814);
  for (const auto& [m, k, n] :
       std::vector<std::array<int64_t, 3>>{{0, 5, 7},
                                           {5, 0, 7},
                                           {5, 7, 0},
                                           {0, 0, 0},
                                           {1, 0, 1}}) {
    const auto a = RandActivations(&rng, m * k);
    const auto b = RandWeights(&rng, k * n);
    const PackedInt8B packed = PackBInt8(b.data(), n, k, n);
    std::vector<int32_t> got(static_cast<size_t>(m * n), -7);
    Int8Gemm(m, n, a.data(), k, packed, got.data());
    // k == 0 must yield exact zeros, not uninitialized memory.
    for (const int32_t v : got) {
      ASSERT_EQ(v, 0) << "m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(Int8GemmOracleTest, SaturationEdgeValuesStayExact) {
  // The maddubs pipeline saturates in int16 if operands exceed the proven
  // bounds; with a = kActQMax = 64 everywhere and b at the extreme s8
  // values the partial sums sit exactly ON those bounds (two products of
  // 64 * -128 = -16384 per maddubs lane, and -32768 after the pair add).
  // Every combination must still match the int32 oracle exactly.
  const std::vector<int8_t> extremes = {-128, -127, 127};
  for (const int8_t w0 : extremes) {
    for (const int8_t w1 : extremes) {
      const int64_t m = kMR8 + 1, k = 2 * kKO8, n = kNR8 + 1;
      std::vector<uint8_t> a(static_cast<size_t>(m * k),
                             static_cast<uint8_t>(kActQMax));
      std::vector<int8_t> b(static_cast<size_t>(k * n));
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t j = 0; j < n; ++j) {
          b[p * n + j] = (p % 2 == 0) ? w0 : w1;
        }
      }
      ExpectPackedMatchesNaive(m, k, n, a, b,
                               "w0=" + std::to_string(w0) +
                                   " w1=" + std::to_string(w1));
    }
  }
}

TEST(Int8GemmOracleTest, TileBoundaryShapes) {
  Rng rng(815);
  for (const auto& [m, k, n] : std::vector<std::array<int64_t, 3>>{
           {kMR8 - 1, kKO8 - 1, kNR8 - 1},
           {kMR8, kKO8, kNR8},
           {kMR8 + 1, kKO8 + 1, kNR8 + 1},
           {kMC8 - 1, 40, 2 * kNR8 + 1},
           {kMC8, 2 * kKO8, kNR8},
           {kMC8 + 1, 3 * kKO8 + 5, kNR8 * 3 + 7},
           {2 * kMC8 + 3, 129, 2 * kNR8 + 9},
       }) {
    const auto a = RandActivations(&rng, m * k);
    const auto b = RandWeights(&rng, k * n);
    ExpectPackedMatchesNaive(m, k, n, a, b,
                             "m=" + std::to_string(m) + " k=" +
                                 std::to_string(k) + " n=" + std::to_string(n));
  }
}

TEST(Int8GemmOracleTest, GenericAndAvx2MicroKernelsAgree) {
  if (!detail::Int8Avx2KernelCompiled() || !detail::Int8Avx2Supported()) {
    GTEST_SKIP() << "AVX2 int8 kernel unavailable on this machine";
  }
  Rng rng(816);
  for (const int64_t k : {int64_t{1}, kKO8, 3 * kKO8 + 2, int64_t{200}}) {
    const int64_t ko = (k + kKO8 - 1) / kKO8;
    const auto a = RandActivations(&rng, kMR8 * k);
    const auto b = RandWeights(&rng, k * kNR8);
    std::vector<uint8_t> apanel(static_cast<size_t>(ko * kMR8 * kKO8));
    detail::PackAInt8(a.data(), k, kMR8, k, apanel.data());
    const PackedInt8B packed = PackBInt8(b.data(), kNR8, k, kNR8);
    std::vector<int32_t> cg(static_cast<size_t>(kMR8 * kNR8));
    std::vector<int32_t> cv(static_cast<size_t>(kMR8 * kNR8));
    detail::Int8MicroKernelGeneric(ko, apanel.data(), packed.data.data(),
                                   cg.data(), kNR8);
    detail::Int8MicroKernelAvx2(ko, apanel.data(), packed.data.data(),
                                cv.data(), kNR8);
    EXPECT_EQ(cg, cv) << "k=" << k;
  }
}

TEST(Int8GemmDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(817);
  for (const auto& [m, k, n] : std::vector<std::array<int64_t, 3>>{
           {kMC8 - 1, 40, 2 * kNR8 + 1},
           {kMC8 + 1, 129, kNR8 + 1},
           {2 * kMC8 + 3, 64, 3 * kNR8 + 5},
       }) {
    const auto a = RandActivations(&rng, m * k);
    const auto b = RandWeights(&rng, k * n);
    const PackedInt8B packed = PackBInt8(b.data(), n, k, n);
    base::SetNumThreads(1);
    std::vector<int32_t> serial(static_cast<size_t>(m * n));
    Int8Gemm(m, n, a.data(), k, packed, serial.data());
    base::SetNumThreads(8);
    std::vector<int32_t> parallel(static_cast<size_t>(m * n));
    Int8Gemm(m, n, a.data(), k, packed, parallel.data());
    EXPECT_EQ(serial, parallel) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Int8GemmDeterminismTest, DequantEpilogueBitwiseAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(818);
  const int64_t m = kMC8 + 7, k = 50, n = 2 * kNR8 + 3;
  const auto a = RandActivations(&rng, m * k);
  const auto b = RandWeights(&rng, k * n);
  const PackedInt8B packed = PackBInt8(b.data(), n, k, n);
  std::vector<int32_t> row_zero(static_cast<size_t>(m));
  std::vector<float> row_scale(static_cast<size_t>(m));
  std::vector<float> col_scale(static_cast<size_t>(n));
  std::vector<float> bias(static_cast<size_t>(n));
  for (int64_t i = 0; i < m; ++i) {
    row_zero[i] = static_cast<int32_t>(rng.UniformInt(int64_t{0}, int64_t{64}));
    row_scale[i] = static_cast<float>(rng.Uniform(0.01, 1.0));
  }
  for (int64_t j = 0; j < n; ++j) {
    col_scale[j] = static_cast<float>(rng.Uniform(0.001, 0.2));
    bias[j] = static_cast<float>(rng.Normal());
  }
  base::SetNumThreads(1);
  std::vector<float> ys(static_cast<size_t>(m * n));
  Int8GemmDequant(m, n, a.data(), k, row_zero.data(), row_scale.data(), packed,
                  col_scale.data(), bias.data(), ys.data());
  base::SetNumThreads(8);
  std::vector<float> yp(static_cast<size_t>(m * n));
  Int8GemmDequant(m, n, a.data(), k, row_zero.data(), row_scale.data(), packed,
                  col_scale.data(), bias.data(), yp.data());
  EXPECT_EQ(0, std::memcmp(ys.data(), yp.data(),
                           ys.size() * sizeof(float)));

  // Reference epilogue from the naive int32 product.
  std::vector<int32_t> s(static_cast<size_t>(m * n));
  NaiveInt8Gemm(m, k, n, a.data(), k, b.data(), n, s.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float want =
          row_scale[i] * col_scale[j] *
              static_cast<float>(s[i * n + j] -
                                 row_zero[i] * packed.colsum[j]) +
          bias[j];
      ASSERT_EQ(want, ys[i * n + j]) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Int8GemmTest, PackBColsumMatchesColumnSums) {
  Rng rng(819);
  const int64_t k = 23, n = 19;
  const auto b = RandWeights(&rng, k * n);
  const PackedInt8B packed = PackBInt8(b.data(), n, k, n);
  for (int64_t j = 0; j < n; ++j) {
    int32_t want = 0;
    for (int64_t p = 0; p < k; ++p) {
      want += b[p * n + j];
    }
    EXPECT_EQ(packed.colsum[j], want) << "j=" << j;
  }
}

TEST(Int8GemmTest, EnabledGateReadsEnvPerCall) {
  {
    Int8EnvGuard guard("off");
    EXPECT_FALSE(Int8GemmEnabled());
  }
  {
    Int8EnvGuard guard("on");
    EXPECT_TRUE(Int8GemmEnabled());
  }
  {
    Int8EnvGuard guard(nullptr);
    EXPECT_TRUE(Int8GemmEnabled());
  }
}

TEST(Int8GemmTest, MicroKernelNameIsKnown) {
  const std::string name = Int8MicroKernelName();
  EXPECT_TRUE(name == "avx2" || name == "generic") << name;
}

}  // namespace
}  // namespace units::gemm
