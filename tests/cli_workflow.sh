#!/usr/bin/env bash
# End-to-end test of the units_cli tool: generate a small UCR-style file,
# run pretrain -> finetune -> predict -> info, and sanity-check outputs.
# Usage: cli_workflow.sh <path-to-units_cli>
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Two trivially separable classes: constant-ish low vs high series.
DATA="$WORK/train.csv"
awk 'BEGIN {
  for (i = 0; i < 16; ++i) {
    base = (i % 2 == 0) ? 0 : 5;
    printf "%d", i % 2;
    for (t = 0; t < 32; ++t) {
      printf ",%.2f", base + 0.1 * (t % 3);
    }
    printf "\n";
  }
}' > "$DATA"

"$CLI" list | grep -q whole_series_contrastive
"$CLI" list | grep -q classification
"$CLI" list | grep -q gated

"$CLI" pretrain --data "$DATA" --format ucr \
  --templates whole_series_contrastive --out "$WORK/model.json" \
  --set epochs=2 --set hidden_channels=8 --set repr_dim=8 \
  --set num_blocks=1 | grep -q "saved"

"$CLI" info --model "$WORK/model.json" | grep -q "pretrained: yes"

"$CLI" finetune --model "$WORK/model.json" --data "$DATA" --format ucr \
  --task classification --out "$WORK/fitted.json" \
  --set epochs=8 | grep -q "saved"

"$CLI" info --model "$WORK/fitted.json" | grep -q "task state: fitted"

"$CLI" predict --model "$WORK/fitted.json" --data "$DATA" --format ucr \
  --out "$WORK/pred.csv"
# 16 predictions + header.
[ "$(wc -l < "$WORK/pred.csv")" -eq 17 ]

# Unknown command fails with usage.
if "$CLI" bogus > /dev/null 2>&1; then
  echo "expected nonzero exit for unknown command" >&2
  exit 1
fi

# --- Negative cases: every bad input must fail with stderr + non-zero exit,
# --- never a crash and never a silent success.
expect_failure() {
  local desc="$1"; shift
  local err="$WORK/stderr.txt"
  if "$@" > /dev/null 2> "$err"; then
    echo "expected nonzero exit: $desc" >&2
    exit 1
  fi
  if ! grep -qi "error" "$err"; then
    echo "expected an error message on stderr: $desc" >&2
    exit 1
  fi
}

# A bad config/model file (valid JSON, wrong shape) must not exit 0.
echo '{"not": "a pipeline"}' > "$WORK/bad.json"
expect_failure "info on a non-pipeline file" \
  "$CLI" info --model "$WORK/bad.json"
expect_failure "predict with a non-pipeline model" \
  "$CLI" predict --model "$WORK/bad.json" --data "$DATA" --format ucr

# Truncated JSON must be a parse error, not a crash.
head -c 40 "$WORK/fitted.json" > "$WORK/truncated.json"
expect_failure "info on truncated JSON" \
  "$CLI" info --model "$WORK/truncated.json"

# Garbage numeric flags must be rejected, not parsed as 0 or thrown through.
expect_failure "non-numeric --window" \
  "$CLI" pretrain --data "$DATA" --format long --window abc \
    --out "$WORK/never.json"

# Missing files and missing required flags.
expect_failure "missing data file" \
  "$CLI" predict --model "$WORK/fitted.json" --data "$WORK/absent.csv"
expect_failure "missing required --out" \
  "$CLI" pretrain --data "$DATA" --format ucr

echo "CLI workflow OK"
