#!/usr/bin/env bash
# End-to-end test of the units_cli tool: generate a small UCR-style file,
# run pretrain -> finetune -> predict -> info, and sanity-check outputs.
# Usage: cli_workflow.sh <path-to-units_cli>
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Two trivially separable classes: constant-ish low vs high series.
DATA="$WORK/train.csv"
awk 'BEGIN {
  for (i = 0; i < 16; ++i) {
    base = (i % 2 == 0) ? 0 : 5;
    printf "%d", i % 2;
    for (t = 0; t < 32; ++t) {
      printf ",%.2f", base + 0.1 * (t % 3);
    }
    printf "\n";
  }
}' > "$DATA"

"$CLI" list | grep -q whole_series_contrastive
"$CLI" list | grep -q classification
"$CLI" list | grep -q gated

"$CLI" pretrain --data "$DATA" --format ucr \
  --templates whole_series_contrastive --out "$WORK/model.json" \
  --set epochs=2 --set hidden_channels=8 --set repr_dim=8 \
  --set num_blocks=1 | grep -q "saved"

"$CLI" info --model "$WORK/model.json" | grep -q "pretrained: yes"

"$CLI" finetune --model "$WORK/model.json" --data "$DATA" --format ucr \
  --task classification --out "$WORK/fitted.json" \
  --set epochs=8 | grep -q "saved"

"$CLI" info --model "$WORK/fitted.json" | grep -q "task state: fitted"

"$CLI" predict --model "$WORK/fitted.json" --data "$DATA" --format ucr \
  --out "$WORK/pred.csv"
# 16 predictions + header.
[ "$(wc -l < "$WORK/pred.csv")" -eq 17 ]

# Unknown command fails with usage.
if "$CLI" bogus > /dev/null 2>&1; then
  echo "expected nonzero exit for unknown command" >&2
  exit 1
fi

echo "CLI workflow OK"
