#include "data/window.h"

#include <gtest/gtest.h>

namespace units::data {
namespace {

Tensor MakeSeries(int64_t d, int64_t t) {
  Tensor s = Tensor::Zeros({d, t});
  for (int64_t c = 0; c < d; ++c) {
    for (int64_t i = 0; i < t; ++i) {
      s.At({c, i}) = static_cast<float>(c * 1000 + i);
    }
  }
  return s;
}

TEST(SlidingWindowTest, CountAndContent) {
  Tensor s = MakeSeries(2, 10);
  Tensor w = SlidingWindows(s, 4, 2);
  EXPECT_EQ(w.shape(), (Shape{4, 2, 4}));  // (10-4)/2+1
  // Window 1 starts at t=2.
  EXPECT_EQ(w.At({1, 0, 0}), 2.0f);
  EXPECT_EQ(w.At({1, 1, 3}), 1005.0f);
}

TEST(SlidingWindowTest, StrideOneDenseWindows) {
  Tensor s = MakeSeries(1, 6);
  Tensor w = SlidingWindows(s, 3, 1);
  EXPECT_EQ(w.dim(0), 4);
  EXPECT_EQ(w.At({3, 0, 2}), 5.0f);
}

TEST(SlidingWindowTest, ExactFitSingleWindow) {
  Tensor s = MakeSeries(1, 5);
  Tensor w = SlidingWindows(s, 5, 3);
  EXPECT_EQ(w.dim(0), 1);
}

TEST(ForecastWindowTest, InputTargetAdjacency) {
  Tensor s = MakeSeries(1, 20);
  auto [x, y] = ForecastWindows(s, 6, 3, 4);
  EXPECT_EQ(x.shape(), (Shape{3, 1, 6}));
  EXPECT_EQ(y.shape(), (Shape{3, 1, 3}));
  // Target of window i starts right after its input.
  for (int64_t i = 0; i < 3; ++i) {
    const float last_input = x.At({i, 0, 5});
    const float first_target = y.At({i, 0, 0});
    EXPECT_EQ(first_target, last_input + 1.0f);
  }
}

TEST(ForecastWindowTest, MultichannelAligned) {
  Tensor s = MakeSeries(3, 30);
  auto [x, y] = ForecastWindows(s, 8, 4, 8);
  EXPECT_EQ(x.dim(1), 3);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(y.At({0, 2, 0}), 2008.0f);
}

TEST(LabelWindowTest, RejectsDegenerateWindowAndStride) {
  // Regression: SlidingLabelWindows used to skip the window/stride guards
  // that SlidingWindows has, so stride=0 hit an integer divide-by-zero
  // (SIGFPE, no diagnostic) instead of a check failure.
  Tensor labels = Tensor::Zeros({10});
  EXPECT_DEATH(SlidingLabelWindows(labels, 0, 2), "CHECK failed");
  EXPECT_DEATH(SlidingLabelWindows(labels, 4, 0), "CHECK failed");
}

TEST(SlidingWindowTest, RejectsDegenerateWindowAndStride) {
  Tensor s = MakeSeries(1, 10);
  EXPECT_DEATH(SlidingWindows(s, 0, 2), "CHECK failed");
  EXPECT_DEATH(SlidingWindows(s, 4, 0), "CHECK failed");
}

TEST(LabelWindowTest, TracksSlidingWindows) {
  Tensor labels = Tensor::Zeros({10});
  labels[5] = 1.0f;
  Tensor lw = SlidingLabelWindows(labels, 4, 2);
  EXPECT_EQ(lw.shape(), (Shape{4, 4}));
  // Window starting at 2 covers [2,6): includes index 5.
  EXPECT_EQ(lw.At({1, 3}), 1.0f);
  EXPECT_EQ(lw.At({0, 0}), 0.0f);
  // Window starting at 4 covers [4,8).
  EXPECT_EQ(lw.At({2, 1}), 1.0f);
}

}  // namespace
}  // namespace units::data
