// Streaming inference sessions, end to end: StreamState window assembly
// and rolling normalization (chunking-invariant, bitwise equal to offline
// replay), rolling anomaly-threshold recalibration, the stream_open /
// stream_feed / stream_close protocol ops over both transports, session
// admission control (bounded stream count, shed, idle reap), and graceful
// drain mid-stream. Built as its own executable so the ThreadSanitizer and
// ASan+UBSan CI jobs can run the event-loop + batcher concurrency directly.

#include "serve/streaming.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "data/synthetic.h"
#include "json/json.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/socket_server.h"
#include "serve_test_util.h"
#include "socket_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

StreamState::Config TinyStreamConfig(int64_t channels, int64_t window,
                                     int64_t stride, bool normalize = false) {
  StreamState::Config config;
  config.model = "m";
  config.channels = channels;
  config.window = window;
  config.stride = stride;
  config.normalize = normalize;
  return config;
}

Tensor Ramp(int64_t channels, int64_t length, float offset = 0.0f) {
  Tensor t = Tensor::Zeros({channels, length});
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t j = 0; j < length; ++j) {
      t.data()[c * length + j] =
          offset + static_cast<float>(c * 100 + j);
    }
  }
  return t;
}

TEST(StreamStateTest, TumblingWindowsCarryRawValues) {
  StreamState state(TinyStreamConfig(2, 4, 4));
  const Tensor points = Ramp(2, 10);
  auto windows = state.Feed(points);
  ASSERT_EQ(windows.size(), 2u);  // 10 points -> 2 tumbling windows of 4
  EXPECT_EQ(state.points(), 10);
  EXPECT_EQ(state.windows(), 2);
  for (size_t k = 0; k < windows.size(); ++k) {
    EXPECT_EQ(windows[k].index, static_cast<int64_t>(k));
    ASSERT_EQ(windows[k].values.shape(), Shape({1, 2, 4}));
    for (int64_t c = 0; c < 2; ++c) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(windows[k].values[c * 4 + j],
                  points[c * 10 + static_cast<int64_t>(k) * 4 + j]);
      }
    }
  }
  // The 2 leftover points complete the next window after 2 more arrive.
  auto more = state.Feed(Ramp(2, 2, 500.0f));
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].index, 2);
  EXPECT_EQ(more[0].values[0], points[8]);  // buffered tail
  EXPECT_EQ(more[0].values[2], 500.0f);     // fresh point, channel 0
}

TEST(StreamStateTest, OverlappingStrideReusesTail) {
  StreamState state(TinyStreamConfig(1, 4, 2));
  auto windows = state.Feed(Ramp(1, 8));  // values 0..7
  ASSERT_EQ(windows.size(), 3u);  // starts at 0, 2, 4
  for (size_t k = 0; k < windows.size(); ++k) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(windows[k].values[j],
                static_cast<float>(2 * k) + static_cast<float>(j));
    }
  }
}

TEST(StreamStateTest, WindowsAreChunkingInvariant) {
  data::DriftingStreamOpts opts;
  opts.num_channels = 2;
  opts.total_length = 100;
  const Tensor series = data::MakeDriftingStream(opts).series;
  StreamState one_shot(TinyStreamConfig(2, 16, 8, /*normalize=*/true));
  auto expected = one_shot.Feed(series);
  StreamState chunked(TinyStreamConfig(2, 16, 8, /*normalize=*/true));
  std::vector<StreamState::CompletedWindow> got;
  const int64_t chunks[] = {7, 1, 32, 17, 3, 40};
  int64_t offset = 0;
  for (int64_t len : chunks) {
    len = std::min(len, series.dim(1) - offset);
    if (len <= 0) {
      break;
    }
    Tensor chunk = Tensor::Zeros({2, len});
    for (int64_t c = 0; c < 2; ++c) {
      for (int64_t j = 0; j < len; ++j) {
        chunk.data()[c * len + j] = series[c * series.dim(1) + offset + j];
      }
    }
    for (auto& w : chunked.Feed(chunk)) {
      got.push_back(std::move(w));
    }
    offset += len;
  }
  ASSERT_EQ(offset, series.dim(1));
  ASSERT_EQ(got.size(), expected.size());
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].index, expected[k].index);
    ExpectBitwiseEqual(got[k].values, expected[k].values,
                       "chunked window " + std::to_string(k));
  }
}

TEST(StreamStateTest, RollingNormalizationUsesAllPointsSeen) {
  // Window 2's normalization must include window 1's points: the rolling
  // statistics accumulate over the whole stream, not per window.
  StreamState state(TinyStreamConfig(1, 2, 2, /*normalize=*/true));
  const std::vector<float> pts = {0.0f, 2.0f, 4.0f, 6.0f};
  auto w = state.Feed(Tensor::FromVector({1, 4}, pts));
  ASSERT_EQ(w.size(), 2u);
  // After 2 points: mean 1, population stddev 1 -> z = {-1, 1}.
  EXPECT_FLOAT_EQ(w[0].values[0], -1.0f);
  EXPECT_FLOAT_EQ(w[0].values[1], 1.0f);
  // After 4 points: mean 3, stddev sqrt(5); window 2 holds {4, 6}.
  data::RollingNormalizer ref(1);
  for (float v : pts) {
    ref.Update(&v);
  }
  const float mu = ref.Mean()[0];
  const float sd = ref.Stddev()[0];
  EXPECT_FLOAT_EQ(w[1].values[0], (4.0f - mu) / sd);
  EXPECT_FLOAT_EQ(w[1].values[1], (6.0f - mu) / sd);
}

TEST(StreamStateTest, RecalibrationUsesPriorWindowsOnly) {
  StreamState::Config config = TinyStreamConfig(1, 4, 4);
  config.quantile = 0.5;
  config.score_window = 8;
  StreamState state(config);
  std::vector<int64_t> labels(4, 0);
  // First window: empty ring -> no threshold, labels untouched.
  const Tensor first = Tensor::FromVector({1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FALSE(state.RecalibrateLabels(first, &labels).has_value());
  EXPECT_EQ(labels, std::vector<int64_t>(4, 0));
  // Second window: threshold = median of the first window's scores (2.0).
  const Tensor second = Tensor::FromVector({1, 4}, {0.5f, 2.5f, 1.0f, 9.0f});
  auto threshold = state.RecalibrateLabels(second, &labels);
  ASSERT_TRUE(threshold.has_value());
  EXPECT_FLOAT_EQ(*threshold, 2.0f);
  EXPECT_EQ(labels, (std::vector<int64_t>{0, 1, 0, 1}));
}

TEST(StreamStateTest, ScoreRingIsBounded) {
  StreamState::Config config = TinyStreamConfig(1, 2, 2);
  config.quantile = 0.99;
  config.score_window = 4;
  StreamState state(config);
  std::vector<int64_t> labels(2, 0);
  // 3 windows x 2 scores with rising magnitude: the ring keeps only the
  // trailing 4 scores, so the threshold reflects recent windows.
  state.RecalibrateLabels(Tensor::FromVector({1, 2}, {100.0f, 100.0f}),
                          &labels);
  state.RecalibrateLabels(Tensor::FromVector({1, 2}, {1.0f, 2.0f}), &labels);
  state.RecalibrateLabels(Tensor::FromVector({1, 2}, {3.0f, 4.0f}), &labels);
  // Ring is now {1, 2, 3, 4}; p99 nearest-rank = 4.
  auto threshold = state.RecalibrateLabels(
      Tensor::FromVector({1, 2}, {5.0f, 6.0f}), &labels);
  ASSERT_TRUE(threshold.has_value());
  EXPECT_FLOAT_EQ(*threshold, 4.0f);
}

TEST(StreamGateTest, BoundsSessionsAndCounts) {
  ServeStats stats;
  StreamingLimits limits;
  limits.max_sessions = 2;
  StreamGate gate(limits, &stats);
  EXPECT_TRUE(gate.TryOpen());
  EXPECT_TRUE(gate.TryOpen());
  EXPECT_FALSE(gate.TryOpen());  // at capacity -> shed
  EXPECT_EQ(gate.active(), 2);
  gate.Close(StreamGate::Release::kClosed);
  EXPECT_TRUE(gate.TryOpen());  // slot freed
  gate.Close(StreamGate::Release::kReaped);
  gate.Close(StreamGate::Release::kClosed);
  EXPECT_EQ(gate.active(), 0);
  const auto streams = stats.Streams();
  EXPECT_EQ(streams.opened, 3);
  EXPECT_EQ(streams.shed, 1);
  EXPECT_EQ(streams.closed, 2);
  EXPECT_EQ(streams.reaped, 1);
  EXPECT_EQ(streams.active(), 0);
}

// --- protocol tests (stdin transport) --------------------------------------

/// Serializes a [D, P] chunk as the "values" field of a stream_feed line.
std::string FeedLine(int64_t sid, const Tensor& series, int64_t offset,
                     int64_t length) {
  const int64_t channels = series.dim(0);
  const int64_t total = series.dim(1);
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"op\": \"stream_feed\", \"stream\": " << sid << ", \"values\": [";
  for (int64_t c = 0; c < channels; ++c) {
    os << (c == 0 ? "[" : ", [");
    for (int64_t j = 0; j < length; ++j) {
      os << (j == 0 ? "" : ", ") << series[c * total + offset + j];
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

/// A registry with one fitted model saved + loaded under `name`, keeping
/// the original pipeline as the offline oracle.
struct ResidentModel {
  FittedModel fitted;
  std::string name;
};

void LoadResident(ModelRegistry* registry, ResidentModel* model) {
  const std::string path =
      ::testing::TempDir() + "/stream_" + model->name + ".json";
  ASSERT_TRUE(model->fitted.pipeline->SaveJson(path).ok());
  ASSERT_TRUE(registry->Load(model->name, path).ok());
}

TEST(StreamProtocolTest, OpenFeedCloseOverStdinTransport) {
  ResidentModel model{MakeFitted("classification"), "cls"};
  ModelRegistry registry;
  LoadResident(&registry, &model);

  data::DriftingStreamOpts opts;
  opts.num_channels = 2;
  opts.total_length = 96;
  const Tensor series = data::MakeDriftingStream(opts).series;

  std::ostringstream input;
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 32, "
           "\"id\": \"s0\"}\n";
  input << FeedLine(0, series, 0, 40) << "\n";
  input << FeedLine(0, series, 40, 56) << "\n";
  input << "{\"op\": \"stream_close\", \"stream\": 0}\n";
  input << "{\"op\": \"stream_feed\", \"stream\": 0, \"values\": [1]}\n";
  input << "{\"op\": \"stats\"}\n";
  input << "{\"op\": \"quit\"}\n";

  JsonLineServer::Options options;
  options.batcher.max_delay_ms = 0.0;
  JsonLineServer server(&registry, options);
  std::istringstream in(input.str());
  std::ostringstream out;
  EXPECT_EQ(server.Run(in, out), 0);

  std::istringstream responses(out.str());
  std::vector<json::JsonValue> lines;
  std::string line;
  while (std::getline(responses, line)) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    lines.push_back(std::move(*parsed));
  }
  ASSERT_EQ(lines.size(), 7u);

  EXPECT_TRUE(lines[0].at("ok").AsBool());
  EXPECT_EQ(lines[0].at("op").AsString(), "stream_open");
  EXPECT_EQ(lines[0].at("id").AsString(), "s0");
  EXPECT_EQ(lines[0].at("stream").AsInt(), 0);
  EXPECT_EQ(lines[0].at("window").AsInt(), 32);
  EXPECT_EQ(lines[0].at("stride").AsInt(), 32);

  // 40 points -> 1 window; +56 -> 2 more tumbling windows.
  EXPECT_TRUE(lines[1].at("ok").AsBool());
  ASSERT_EQ(lines[1].at("windows").size(), 1u);
  EXPECT_EQ(lines[1].at("windows")[0].at("index").AsInt(), 0);
  EXPECT_TRUE(lines[1].at("windows")[0].at("ok").AsBool());
  EXPECT_TRUE(lines[1].at("windows")[0].Contains("labels"));
  EXPECT_EQ(lines[1].at("points").AsInt(), 40);
  ASSERT_EQ(lines[2].at("windows").size(), 2u);
  EXPECT_EQ(lines[2].at("windows")[0].at("index").AsInt(), 1);
  EXPECT_EQ(lines[2].at("windows")[1].at("index").AsInt(), 2);
  EXPECT_EQ(lines[2].at("points").AsInt(), 96);

  EXPECT_TRUE(lines[3].at("ok").AsBool());
  EXPECT_EQ(lines[3].at("op").AsString(), "stream_close");
  EXPECT_EQ(lines[3].at("windows").AsInt(), 3);
  EXPECT_EQ(lines[3].at("points").AsInt(), 96);

  EXPECT_FALSE(lines[4].at("ok").AsBool());  // feed after close
  EXPECT_NE(lines[4].at("error").AsString().find("unknown or closed"),
            std::string::npos);

  const json::JsonValue& streams = lines[5].at("stats").at("streams");
  EXPECT_EQ(streams.at("opened").AsInt(), 1);
  EXPECT_EQ(streams.at("closed").AsInt(), 1);
  EXPECT_EQ(streams.at("active").AsInt(), 0);
  EXPECT_EQ(streams.at("windows").AsInt(), 3);
  EXPECT_EQ(streams.at("points").AsInt(), 96);  // failed feed counts nothing
}

/// Runs one stream session over the stdin transport, feeding `series` in
/// the given chunk lengths, and returns the serialized window objects in
/// index order. `plan_mode` is the UNITS_PLAN value for the whole session
/// (nullptr = default, i.e. captured plans).
std::vector<std::string> StreamWindows(ModelRegistry* registry,
                                       const std::string& model,
                                       const Tensor& series,
                                       const std::vector<int64_t>& chunks,
                                       const char* plan_mode) {
  PlanModeGuard scoped_mode(plan_mode);
  std::ostringstream input;
  input << "{\"op\": \"stream_open\", \"model\": \"" << model
        << "\", \"window\": 32}\n";
  int64_t offset = 0;
  for (const int64_t len : chunks) {
    input << FeedLine(0, series, offset, len) << "\n";
    offset += len;
  }
  input << "{\"op\": \"stream_close\", \"stream\": 0}\n";
  input << "{\"op\": \"quit\"}\n";

  std::vector<std::string> windows;
  {
    JsonLineServer::Options options;
    options.batcher.max_delay_ms = 0.0;
    JsonLineServer server(registry, options);
    std::istringstream in(input.str());
    std::ostringstream out;
    EXPECT_EQ(server.Run(in, out), 0);

    std::istringstream responses(out.str());
    std::string line;
    while (std::getline(responses, line)) {
      auto parsed = json::Parse(line);
      EXPECT_TRUE(parsed.ok()) << line;
      if (!parsed.ok() || !parsed->Contains("windows") ||
          !parsed->at("windows").is_array()) {
        continue;  // open/close/quit replies
      }
      for (size_t i = 0; i < parsed->at("windows").size(); ++i) {
        windows.push_back(parsed->at("windows")[i].Dump());
      }
    }
  }  // server (and its batcher threads) gone before the env resets
  return windows;
}

/// Stream replies are invariant to both feed chunking and the execution
/// substrate: captured plans on vs UNITS_PLAN=dynamic yield bitwise
/// identical window payloads, whatever chunk sizes the client picked.
TEST(StreamProtocolTest, WindowsInvariantToChunkingAndPlanMode) {
  ResidentModel model{MakeFitted("classification"), "cls"};
  ModelRegistry registry;
  LoadResident(&registry, &model);

  data::DriftingStreamOpts opts;
  opts.num_channels = 2;
  opts.total_length = 128;
  const Tensor series = data::MakeDriftingStream(opts).series;

  const std::vector<int64_t> even = {32, 32, 32, 32};
  const std::vector<int64_t> ragged = {7, 41, 3, 29, 48};
  const auto planned_even =
      StreamWindows(&registry, "cls", series, even, nullptr);
  const auto planned_ragged =
      StreamWindows(&registry, "cls", series, ragged, nullptr);
  const auto dynamic_even =
      StreamWindows(&registry, "cls", series, even, "dynamic");
  const auto dynamic_ragged =
      StreamWindows(&registry, "cls", series, ragged, "dynamic");

  ASSERT_EQ(planned_even.size(), 4u);
  ASSERT_EQ(planned_ragged, planned_even);  // chunking-invariant
  ASSERT_EQ(dynamic_even, planned_even);    // plan-substrate-invariant
  ASSERT_EQ(dynamic_ragged, planned_even);  // both at once
}

TEST(StreamProtocolTest, OpenValidationErrors) {
  ResidentModel model{MakeFitted("classification"), "cls"};
  ModelRegistry registry;
  LoadResident(&registry, &model);

  std::ostringstream input;
  input << "{\"op\": \"stream_open\", \"model\": \"nope\", \"window\": 8}\n";
  input << "{\"op\": \"stream_open\", \"model\": \"cls\"}\n";
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 0}\n";
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 8, "
           "\"stride\": 9}\n";
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 8, "
           "\"quantile\": 0.9}\n";  // not an anomaly model
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": "
           "1000000}\n";
  input << "{\"op\": \"stream_feed\", \"stream\": 5, \"values\": [1]}\n";
  input << "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 8}\n";
  input << "{\"op\": \"stream_feed\", \"stream\": 0, \"values\": [1, 2]}\n";
  input << "{\"op\": \"quit\"}\n";

  JsonLineServer::Options options;
  options.batcher.max_delay_ms = 0.0;
  JsonLineServer server(&registry, options);
  std::istringstream in(input.str());
  std::ostringstream out;
  EXPECT_EQ(server.Run(in, out), 0);

  std::istringstream responses(out.str());
  std::vector<json::JsonValue> lines;
  std::string line;
  while (std::getline(responses, line)) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    lines.push_back(std::move(*parsed));
  }
  ASSERT_EQ(lines.size(), 10u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(lines[i].at("ok").AsBool()) << i;
  }
  EXPECT_TRUE(lines[7].at("ok").AsBool());  // valid open
  // Feed with 1 channel against a 2-channel model.
  EXPECT_FALSE(lines[8].at("ok").AsBool());
  EXPECT_NE(lines[8].at("error").AsString().find("channels"),
            std::string::npos);
}

// --- end-to-end over TCP ---------------------------------------------------

struct WindowOutput {
  int64_t index = 0;
  json::JsonValue body;
};

/// Runs one streaming client session: open, feed `series` in chunks of
/// `chunk`, close; returns the per-window responses.
void RunStreamClient(int port, const std::string& model, const Tensor& series,
                     int64_t window, int64_t chunk,
                     std::vector<WindowOutput>* outputs) {
  TestClient client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("{\"op\": \"stream_open\", \"model\": \"" +
                              model + "\", \"window\": " +
                              std::to_string(window) + "}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  auto open_resp = json::Parse(line);
  ASSERT_TRUE(open_resp.ok()) << line;
  ASSERT_TRUE(open_resp->at("ok").AsBool()) << line;
  const int64_t sid = open_resp->at("stream").AsInt();

  const int64_t total = series.dim(1);
  for (int64_t offset = 0; offset < total; offset += chunk) {
    const int64_t len = std::min(chunk, total - offset);
    ASSERT_TRUE(client.SendLine(FeedLine(sid, series, offset, len)));
    ASSERT_TRUE(client.ReadLine(&line));
    auto resp = json::Parse(line);
    ASSERT_TRUE(resp.ok()) << line;
    ASSERT_TRUE(resp->at("ok").AsBool()) << line;
    ASSERT_EQ(resp->at("op").AsString(), "stream_feed") << line;
    const json::JsonValue& windows = resp->at("windows");
    for (size_t k = 0; k < windows.size(); ++k) {
      ASSERT_TRUE(windows[k].at("ok").AsBool()) << line;
      outputs->push_back({windows[k].at("index").AsInt(), windows[k]});
    }
  }
  ASSERT_TRUE(
      client.SendLine("{\"op\": \"stream_close\", \"stream\": " +
                      std::to_string(sid) + "}"));
  ASSERT_TRUE(client.ReadLine(&line));
  auto close_resp = json::Parse(line);
  ASSERT_TRUE(close_resp.ok()) << line;
  ASSERT_TRUE(close_resp->at("ok").AsBool()) << line;
  EXPECT_EQ(close_resp->at("points").AsInt(), total);
  EXPECT_EQ(close_resp->at("windows").AsInt(),
            static_cast<int64_t>(outputs->size()));
}

/// Replays the same series offline (StreamState + direct pipeline
/// Predict + the same rolling recalibration) and checks the streamed
/// responses are bitwise identical: same labels, same %.9g-serialized
/// scores/predictions, same rolling thresholds.
void ExpectMatchesOfflineReplay(const std::vector<WindowOutput>& outputs,
                                core::UnitsPipeline* pipeline,
                                const Tensor& series, int64_t window,
                                double quantile) {
  StreamState::Config config;
  config.model = "oracle";
  config.channels = series.dim(0);
  config.window = window;
  config.stride = window;
  config.normalize = true;
  config.quantile = quantile;
  StreamState offline(config);
  auto windows = offline.Feed(series);
  ASSERT_EQ(outputs.size(), windows.size());
  for (size_t k = 0; k < windows.size(); ++k) {
    ASSERT_EQ(outputs[k].index, windows[k].index);
    auto result = pipeline->Predict(windows[k].values);
    ASSERT_TRUE(result.ok());
    std::vector<int64_t> labels = result->labels;
    std::optional<float> threshold;
    if (quantile > 0.0 && result->scores.numel() > 0) {
      threshold = offline.RecalibrateLabels(result->scores, &labels);
    }
    const json::JsonValue& got = outputs[k].body;
    const std::string what = "window " + std::to_string(k);
    if (!labels.empty()) {
      ASSERT_TRUE(got.Contains("labels")) << what;
      EXPECT_EQ(got.at("labels").ToInts(), labels) << what;
    }
    if (result->scores.numel() > 0) {
      ASSERT_TRUE(got.Contains("scores")) << what;
      // Dump/Parse is idempotent on serialized output, so string equality
      // of the re-dumped field is bitwise equality of the floats.
      EXPECT_EQ(got.at("scores").Dump(),
                core::TensorToJson(result->scores).Dump())
          << what;
    }
    if (result->predictions.numel() > 0) {
      ASSERT_TRUE(got.Contains("predictions")) << what;
      EXPECT_EQ(got.at("predictions").Dump(),
                core::TensorToJson(result->predictions).Dump())
          << what;
    }
    if (threshold.has_value()) {
      ASSERT_TRUE(got.Contains("threshold")) << what;
      EXPECT_EQ(static_cast<float>(got.at("threshold").AsNumber()),
                *threshold)
          << what;
    } else {
      EXPECT_FALSE(got.Contains("threshold")) << what;
    }
  }
}

class StreamingE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cls_ = new ResidentModel{MakeFitted("classification", 7), "cls"};
    anom_ = new ResidentModel{MakeFitted("anomaly_detection", 11), "anom"};
  }
  static void TearDownTestSuite() {
    delete cls_;
    cls_ = nullptr;
    delete anom_;
    anom_ = nullptr;
  }

  void LoadModels(ModelRegistry* registry) {
    LoadResident(registry, cls_);
    LoadResident(registry, anom_);
  }

  static ResidentModel* cls_;
  static ResidentModel* anom_;
};

ResidentModel* StreamingE2ETest::cls_ = nullptr;
ResidentModel* StreamingE2ETest::anom_ = nullptr;

TEST_F(StreamingE2ETest, ConcurrentDriftingStreamsMatchOfflineReplay) {
  ModelRegistry registry;
  LoadModels(&registry);
  SocketServer::Options options;
  options.batcher.max_delay_ms = 1.0;
  ServerHarness harness(&registry, options);
  ASSERT_TRUE(harness.Start());

  constexpr int kClients = 8;
  constexpr int64_t kWindow = 32;
  std::vector<Tensor> series;
  std::vector<std::vector<WindowOutput>> outputs(kClients);
  for (int c = 0; c < kClients; ++c) {
    data::DriftingStreamOpts opts;
    opts.num_channels = 2;
    opts.total_length = 32 * 6 + 11;  // 6 windows + a ragged tail
    opts.seed = 100 + static_cast<uint64_t>(c);
    series.push_back(data::MakeDriftingStream(opts).series);
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string model = c % 2 == 0 ? "cls" : "anom";
      const int64_t chunk = 5 + 9 * c;  // different chunkings per client
      RunStreamClient(harness.port(), model, series[c], kWindow, chunk,
                      &outputs[c]);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(outputs[c].size(), 6u) << "client " << c;
    const bool anomaly = c % 2 != 0;
    ExpectMatchesOfflineReplay(
        outputs[c], (anomaly ? anom_ : cls_)->fitted.pipeline.get(),
        series[c], kWindow, anomaly ? 0.995 : 0.0);
  }
  const auto streams = harness.server()->stats()->Streams();
  EXPECT_EQ(streams.opened, kClients);
  EXPECT_EQ(streams.closed, kClients);
  EXPECT_EQ(streams.active(), 0);
  EXPECT_EQ(streams.windows, kClients * 6);
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(StreamingE2ETest, ExcessStreamsAreShedWithStructuredError) {
  ModelRegistry registry;
  LoadModels(&registry);
  SocketServer::Options options;
  options.streaming.max_sessions = 2;
  ServerHarness harness(&registry, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  std::string line;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.SendLine(
        "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 8}"));
    ASSERT_TRUE(client.ReadLine(&line));
    auto resp = json::Parse(line);
    ASSERT_TRUE(resp.ok()) << line;
    if (i < 2) {
      EXPECT_TRUE(resp->at("ok").AsBool()) << line;
    } else {
      EXPECT_FALSE(resp->at("ok").AsBool()) << line;
      EXPECT_EQ(resp->at("error").AsString(), "overloaded") << line;
    }
  }
  const auto streams = harness.server()->stats()->Streams();
  EXPECT_EQ(streams.opened, 2);
  EXPECT_EQ(streams.shed, 1);
  EXPECT_EQ(streams.active(), 2);
  // Closing the connection releases both slots.
  client.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server()->stats()->Streams().active() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(harness.server()->stats()->Streams().active(), 0);
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(StreamingE2ETest, IdleStreamsAreReaped) {
  ModelRegistry registry;
  LoadModels(&registry);
  SocketServer::Options options;
  options.streaming.idle_timeout_s = 0.2;
  ServerHarness harness(&registry, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  std::string line;
  ASSERT_TRUE(client.SendLine(
      "{\"op\": \"stream_open\", \"model\": \"cls\", \"window\": 8}"));
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(json::Parse(line)->at("ok").AsBool()) << line;

  // The stream sits idle past its timeout; the event loop reaps it on its
  // 100ms poll cadence even with no traffic on the connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server()->stats()->Streams().reaped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(harness.server()->stats()->Streams().reaped, 1);
  EXPECT_EQ(harness.server()->stats()->Streams().active(), 0);

  // A feed on the reaped id answers a structured error.
  ASSERT_TRUE(client.SendLine(
      "{\"op\": \"stream_feed\", \"stream\": 0, \"values\": [[1], [2]]}"));
  ASSERT_TRUE(client.ReadLine(&line));
  auto resp = json::Parse(line);
  ASSERT_TRUE(resp.ok()) << line;
  EXPECT_FALSE(resp->at("ok").AsBool()) << line;
  EXPECT_NE(resp->at("error").AsString().find("unknown or closed"),
            std::string::npos)
      << line;
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(StreamingE2ETest, DrainMidStreamAnswersPendingFeedsAndExitsZero) {
  ModelRegistry registry;
  LoadModels(&registry);
  SocketServer::Options options;
  options.batcher.max_delay_ms = 1.0;
  ServerHarness harness(&registry, options);
  ASSERT_TRUE(harness.Start());

  data::DriftingStreamOpts opts;
  opts.num_channels = 2;
  opts.total_length = 64;
  const Tensor series = data::MakeDriftingStream(opts).series;

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  std::string line;
  ASSERT_TRUE(client.SendLine(
      "{\"op\": \"stream_open\", \"model\": \"anom\", \"window\": 32}"));
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(json::Parse(line)->at("ok").AsBool()) << line;
  // Two feeds in flight when the drain lands mid-stream. Wait until the
  // server has parsed both lines (points visible in stats) — drain stops
  // reading, so bytes still in the kernel buffer would be dropped — then
  // drain while their window predicts may still be pending.
  ASSERT_TRUE(client.SendLine(FeedLine(0, series, 0, 32)));
  ASSERT_TRUE(client.SendLine(FeedLine(0, series, 32, 32)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server()->stats()->Streams().points < 64 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(harness.server()->stats()->Streams().points, 64);
  harness.server()->RequestDrain();
  // Both feed responses still arrive, in order, then the server closes.
  for (int64_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(client.ReadLine(&line)) << k;
    auto resp = json::Parse(line);
    ASSERT_TRUE(resp.ok()) << line;
    EXPECT_TRUE(resp->at("ok").AsBool()) << line;
    ASSERT_EQ(resp->at("windows").size(), 1u) << line;
    EXPECT_EQ(resp->at("windows")[0].at("index").AsInt(), k) << line;
  }
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_EQ(harness.Stop(), 0);
}

}  // namespace
}  // namespace units::serve
