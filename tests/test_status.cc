#include "base/status.h"

#include <gtest/gtest.h>

namespace units {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(std::move(err).ValueOr(7), 7);
  Result<int> good(3);
  EXPECT_EQ(std::move(good).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, OkStatusIsRejected) {
  // Constructing a Result from an OK status is a programming error; it is
  // converted to an Internal error rather than silently claiming a value.
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  UNITS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  UNITS_ASSIGN_OR_RETURN(int h, Half(x));
  UNITS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace units
