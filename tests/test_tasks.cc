// End-to-end tests of the five analysis tasks through the pipeline, at toy
// scale. Functional quality (UniTS vs baselines) is covered by the bench
// harness; here we verify contracts, shapes, and that training moves loss.

#include "core/tasks/tasks.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

UnitsPipeline::Config TinyConfig(const std::string& task) {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 2);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 12);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 4);
  cfg.finetune_params.SetInt("batch_size", 8);
  cfg.seed = 7;
  return cfg;
}

data::TimeSeriesDataset TinyClassData(int64_t n = 24) {
  data::ClassificationOpts opts;
  opts.num_samples = n;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.noise = 0.2f;
  opts.seed = 5;
  return data::MakeClassificationDataset(opts);
}

TEST(ClassificationTaskTest, FitPredictEndToEnd) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE(pipeline.ok());
  auto train = TinyClassData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.size(), 24u);
  for (int64_t label : result->labels) {
    EXPECT_TRUE(label == 0 || label == 1);
  }
  // predictions carry the per-class distribution.
  EXPECT_EQ(result->predictions.shape(), (Shape{24, 2}));
  for (int64_t i = 0; i < 24; ++i) {
    float row = 0.0f;
    for (int64_t c = 0; c < 2; ++c) {
      row += result->predictions.At({i, c});
    }
    EXPECT_NEAR(row, 1.0f, 1e-4);
  }
}

TEST(ClassificationTaskTest, LearnsTrainingSet) {
  auto cfg = TinyConfig("classification");
  cfg.finetune_params.SetInt("epochs", 25);
  cfg.finetune_params.SetDouble("encoder_lr_scale", 1.0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyClassData(32);
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  EXPECT_GT(metrics::Accuracy(train.labels(), result->labels), 0.8);
}

TEST(ClassificationTaskTest, RequiresLabels) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  data::TimeSeriesDataset unlabeled(TinyClassData().values());
  EXPECT_FALSE((*pipeline)->FineTune(unlabeled).ok());
}

TEST(ClassificationTaskTest, PredictBeforeFitFails) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  auto result = (*pipeline)->Predict(TinyClassData().values());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ClassificationTaskTest, LossHistoryDecreases) {
  auto cfg = TinyConfig("classification");
  cfg.finetune_params.SetInt("epochs", 12);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyClassData(32);
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  const auto& history = (*pipeline)->task()->loss_history();
  ASSERT_EQ(history.size(), 12u);
  EXPECT_LT(history.back(), history.front());
}

TEST(ClusteringTaskTest, AssignsRequestedClusterCount) {
  auto cfg = TinyConfig("clustering");
  cfg.finetune_params.SetInt("num_clusters", 2);
  cfg.finetune_params.SetInt("cluster_finetune_epochs", 1);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyClassData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  std::set<int64_t> distinct(result->labels.begin(), result->labels.end());
  EXPECT_LE(distinct.size(), 2u);
  EXPECT_GE(distinct.size(), 1u);
}

TEST(ClusteringTaskTest, CentroidsStoredAfterFit) {
  auto cfg = TinyConfig("clustering");
  cfg.finetune_params.SetInt("num_clusters", 3);
  cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyClassData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task = dynamic_cast<ClusteringTask*>((*pipeline)->task());
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->centroids().dim(0), 3);
}

TEST(ClusteringTaskTest, RejectsDegenerateConfigs) {
  auto cfg = TinyConfig("clustering");
  cfg.finetune_params.SetInt("num_clusters", 1);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  EXPECT_FALSE((*pipeline)->FineTune(TinyClassData()).ok());
}

data::TimeSeriesDataset TinyForecastData() {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 400;
  opts.seed = 9;
  return data::MakeForecastDataset(opts, 32, 8, 8);
}

TEST(ForecastingTaskTest, PredictsHorizonWindows) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("forecasting"), 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->predictions.shape(),
            (Shape{train.num_samples(), 2, 8}));
  EXPECT_FALSE(ops::HasNonFinite(result->predictions));
}

TEST(ForecastingTaskTest, BeatsZeroPredictorOnTrain) {
  auto cfg = TinyConfig("forecasting");
  cfg.finetune_params.SetInt("epochs", 40);
  cfg.finetune_params.SetInt("head_hidden", 32);
  cfg.finetune_params.SetDouble("encoder_lr_scale", 1.0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  const double model_mse =
      metrics::MeanSquaredError(train.targets(), result->predictions);
  const double zero_mse = metrics::MeanSquaredError(
      train.targets(), Tensor::Zeros(train.targets().shape()));
  EXPECT_LT(model_mse, zero_mse);
}

TEST(ForecastingTaskTest, RolloutExtendsHorizon) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("forecasting"), 2);
  auto train = TinyForecastData();  // horizon 8
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task = dynamic_cast<ForecastingTask*>((*pipeline)->task());
  ASSERT_NE(task, nullptr);
  Tensor x = ops::Slice(train.values(), 0, 0, 3);
  // 20 = 2 full horizons + a partial chunk of 4.
  auto rollout = task->Rollout(pipeline->get(), x, 20);
  ASSERT_TRUE(rollout.ok()) << rollout.status().ToString();
  EXPECT_EQ(rollout->shape(), (Shape{3, 2, 20}));
  EXPECT_FALSE(ops::HasNonFinite(*rollout));
  // The first horizon of the rollout equals a direct prediction.
  auto direct = task->Predict(pipeline->get(), x);
  Tensor head = ops::Slice(*rollout, 2, 0, 8);
  EXPECT_TRUE(ops::AllClose(head, direct->predictions, 1e-4f, 1e-4f));
}

TEST(ForecastingTaskTest, RolloutRejectsBadArgs) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("forecasting"), 2);
  auto train = TinyForecastData();
  auto* task = new ForecastingTask();
  std::unique_ptr<ForecastingTask> owned(task);
  EXPECT_FALSE(task->Rollout(pipeline->get(), train.values(), 8).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* fitted = dynamic_cast<ForecastingTask*>((*pipeline)->task());
  EXPECT_FALSE(fitted->Rollout(pipeline->get(), train.values(), 0).ok());
}

TEST(ForecastingTaskTest, PooledReprModeStillWorks) {
  auto cfg = TinyConfig("forecasting");
  cfg.finetune_params.SetString("forecast_repr", "pooled");
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->predictions.dim(2), 8);
}

TEST(ForecastingTaskTest, RequiresTargets) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("forecasting"), 2);
  data::TimeSeriesDataset no_targets(TinyForecastData().values());
  EXPECT_FALSE((*pipeline)->FineTune(no_targets).ok());
}

TEST(ForecastingTaskTest, SupportsMaeLoss) {
  auto cfg = TinyConfig("forecasting");
  cfg.finetune_params.SetString("forecast_loss", "mae");
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  EXPECT_TRUE((*pipeline)->FineTune(TinyForecastData()).ok());
}

data::TimeSeriesDataset TinyAnomalyTrainData() {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 600;
  opts.seed = 11;
  Tensor clean = data::MakeCleanSeries(opts);
  return data::TimeSeriesDataset(data::SlidingWindows(clean, 32, 16));
}

TEST(AnomalyTaskTest, ScoresAndThreshold) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("anomaly_detection"), 2);
  auto train = TinyAnomalyTrainData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scores.shape(), (Shape{train.num_samples(), 32}));
  EXPECT_GE(ops::MinAll(result->scores), 0.0f);
  auto* task = dynamic_cast<AnomalyDetectionTask*>((*pipeline)->task());
  ASSERT_NE(task, nullptr);
  EXPECT_GT(task->threshold(), 0.0f);
  // labels are flattened thresholded decisions.
  EXPECT_EQ(result->labels.size(),
            static_cast<size_t>(train.num_samples() * 32));
}

TEST(AnomalyTaskTest, SpikesScoreHigherThanNormal) {
  auto cfg = TinyConfig("anomaly_detection");
  cfg.finetune_params.SetInt("epochs", 10);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyAnomalyTrainData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());

  // Inject an obvious spike into one window.
  Tensor test = ops::Slice(train.values(), 0, 0, 4).Clone();
  test.At({1, 0, 16}) += 8.0f;
  auto* task = dynamic_cast<AnomalyDetectionTask*>((*pipeline)->task());
  Tensor scores = task->ScoreWindows(pipeline->get(), test);
  // The spiked step outscores the same step of the clean window.
  EXPECT_GT(scores.At({1, 16}), 2.0f * scores.At({0, 16}));
}

TEST(ImputationTaskTest, ReconstructionShape) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("imputation"), 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto result = (*pipeline)->Predict(train.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->predictions.shape(), train.values().shape());
}

TEST(ImputationTaskTest, ImputeFillsOnlyMissing) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("imputation"), 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task = dynamic_cast<ImputationTask*>((*pipeline)->task());
  ASSERT_NE(task, nullptr);

  Tensor x = ops::Slice(train.values(), 0, 0, 4);
  Rng rng(13);
  Tensor mask = data::MakeMissingMask(x.shape(), 0.3f, 3.0f, &rng);
  auto imputed = task->Impute(pipeline->get(), x, mask);
  ASSERT_TRUE(imputed.ok());
  // Observed entries are untouched.
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (mask[i] == 1.0f) {
      EXPECT_EQ((*imputed)[i], x[i]);
    }
  }
}

TEST(ImputationTaskTest, ImputationBeatsZeroFill) {
  auto cfg = TinyConfig("imputation");
  cfg.finetune_params.SetInt("epochs", 40);
  cfg.finetune_params.SetDouble("encoder_lr_scale", 1.0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->Pretrain(train.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task = dynamic_cast<ImputationTask*>((*pipeline)->task());

  Tensor x = ops::Slice(train.values(), 0, 0, 8);
  Rng rng(17);
  Tensor mask = data::MakeMissingMask(x.shape(), 0.25f, 3.0f, &rng);
  auto imputed = task->Impute(pipeline->get(), x, mask);
  ASSERT_TRUE(imputed.ok());
  const double model_rmse = metrics::MaskedRmse(x, *imputed, mask);
  const double zero_rmse =
      metrics::MaskedRmse(x, ops::Mul(x, mask), mask);
  EXPECT_LT(model_rmse, zero_rmse);
}

TEST(ImputationTaskTest, ImputeRejectsMismatchedMask) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("imputation"), 2);
  auto train = TinyForecastData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task = dynamic_cast<ImputationTask*>((*pipeline)->task());
  Tensor x = ops::Slice(train.values(), 0, 0, 2);
  EXPECT_FALSE(task->Impute(pipeline->get(), x,
                            Tensor::Ones({1, 1, 1})).ok());
}

}  // namespace
}  // namespace units::core
