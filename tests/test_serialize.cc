#include "core/serialize.h"

#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

TEST(TensorJsonTest, RoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::RandNormal({2, 3}, &rng);
  auto back = TensorFromJson(TensorToJson(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ((*back)[i], t[i]);
  }
}

TEST(TensorJsonTest, RejectsMalformed) {
  EXPECT_FALSE(TensorFromJson(json::JsonValue::Int(1)).ok());
  json::JsonValue bad = json::JsonValue::Object();
  bad.Set("shape", json::JsonValue::FromInts({2, 2}));
  bad.Set("data", json::JsonValue::FromFloats({1.0f}));  // wrong count
  EXPECT_FALSE(TensorFromJson(bad).ok());
}

TEST(ModuleJsonTest, StateRoundTrip) {
  Rng rng(2);
  nn::Linear src(3, 2, &rng);
  nn::Linear dst(3, 2, &rng);  // different random init
  ASSERT_TRUE(LoadModuleState(&dst, ModuleStateToJson(&src)).ok());
  const auto a = src.NamedParameters();
  const auto b = dst.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(a[i].second.data(), b[i].second.data()));
  }
}

TEST(ModuleJsonTest, MissingParameterIsError) {
  Rng rng(3);
  nn::Linear module(2, 2, &rng);
  json::JsonValue empty = json::JsonValue::Object();
  EXPECT_FALSE(LoadModuleState(&module, empty).ok());
}

TEST(ModuleJsonTest, ShapeMismatchIsError) {
  Rng rng(4);
  nn::Linear small(2, 2, &rng);
  nn::Linear big(4, 4, &rng);
  EXPECT_FALSE(LoadModuleState(&big, ModuleStateToJson(&small)).ok());
}

TEST(ParamSetJsonTest, RoundTripAllKinds) {
  hpo::ParamSet p;
  p.SetDouble("lr", 0.003);
  p.SetInt("epochs", 17);
  p.SetString("backbone", "tcn");
  auto back = ParamSetFromJson(ParamSetToJson(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetDouble("lr", 0), 0.003);
  EXPECT_EQ(back->GetInt("epochs", 0), 17);
  EXPECT_EQ(back->GetString("backbone", ""), "tcn");
}

UnitsPipeline::Config TinyConfig(const std::string& task) {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.seed = 42;
  return cfg;
}

data::TimeSeriesDataset TinyData() {
  data::ClassificationOpts opts;
  opts.num_samples = 16;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 8;
  return data::MakeClassificationDataset(opts);
}

TEST(PipelineJsonTest, RoundTripPreservesRepresentations) {
  const std::string path = ::testing::TempDir() + "/pipe.json";
  auto data = TinyData();
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->Pretrain(data.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  const Tensor z_before = (*pipeline)->TransformFused(data.values());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->pretrained());
  const Tensor z_after = (*loaded)->TransformFused(data.values());
  EXPECT_TRUE(ops::AllClose(z_before, z_after, 1e-5f, 1e-5f));
}

TEST(PipelineJsonTest, RoundTripPreservesPredictions) {
  const std::string path = ::testing::TempDir() + "/pipe_cls.json";
  auto data = TinyData();
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto before = (*pipeline)->Predict(data.values());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok());
  auto after = (*loaded)->Predict(data.values());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(before->labels, after->labels);
}

TEST(PipelineJsonTest, ClusteringStateRoundTrips) {
  const std::string path = ::testing::TempDir() + "/pipe_clu.json";
  auto cfg = TinyConfig("clustering");
  cfg.finetune_params.SetInt("num_clusters", 2);
  cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  auto data = TinyData();
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto before = (*pipeline)->Predict(data.values());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto after = (*loaded)->Predict(data.values());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->labels, after->labels);
}

TEST(PipelineJsonTest, AnomalyThresholdSurvives) {
  const std::string path = ::testing::TempDir() + "/pipe_anom.json";
  data::AnomalyOpts opts;
  opts.total_length = 400;
  opts.seed = 12;
  data::TimeSeriesDataset train(
      data::SlidingWindows(data::MakeCleanSeries(opts), 32, 16));
  auto pipeline = UnitsPipeline::Create(TinyConfig("anomaly_detection"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  auto* task_before =
      dynamic_cast<AnomalyDetectionTask*>((*pipeline)->task());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* task_after = dynamic_cast<AnomalyDetectionTask*>((*loaded)->task());
  ASSERT_NE(task_after, nullptr);
  EXPECT_FLOAT_EQ(task_after->threshold(), task_before->threshold());
}

TEST(PipelineJsonTest, UnfittedTaskStillSavable) {
  const std::string path = ::testing::TempDir() + "/pipe_unfit.json";
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->Pretrain(TinyData().values()).ok());
  // Task never fitted: encoders are saved, task state is skipped.
  EXPECT_TRUE((*pipeline)->SaveJson(path).ok());
  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->Predict(TinyData().values()).ok());
}

TEST(PipelineJsonTest, QuantizedPipelineRoundTripsBitwiseStable) {
  // Saving an int8 pipeline persists the fp32 weights plus precision=int8;
  // LoadJson requantizes deterministically, so two independent loads (two
  // "restarts") must Predict bitwise identically — and identically to the
  // resident quantized pipeline that was saved.
  const std::string path = ::testing::TempDir() + "/pipe_int8.json";
  auto data = TinyData();
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  ASSERT_GT((*pipeline)->QuantizeInt8(), 0);
  EXPECT_EQ((*pipeline)->precision(), "int8");
  auto before = (*pipeline)->Predict(data.values());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

  auto CheckLoad = [&]() {
    auto loaded = UnitsPipeline::LoadJson(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->precision(), "int8");
    ASSERT_TRUE((*loaded)->EnsureReadyForServing().ok());
    auto after = (*loaded)->Predict(data.values());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(before->labels, after->labels);
    ASSERT_EQ(before->predictions.shape(), after->predictions.shape());
    EXPECT_EQ(0, std::memcmp(before->predictions.data(),
                             after->predictions.data(),
                             static_cast<size_t>(
                                 before->predictions.numel()) *
                                 sizeof(float)));
  };
  CheckLoad();  // restart #1
  CheckLoad();  // restart #2: no hidden state leaked into the file
}

TEST(PipelineJsonTest, Fp32PipelineStaysFp32AcrossRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pipe_fp32.json";
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(TinyData()).ok());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());
  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->precision(), "fp32");
}

TEST(PipelineJsonTest, LoadRejectsWrongFormat) {
  const std::string path = ::testing::TempDir() + "/not_pipeline.json";
  json::JsonValue other = json::JsonValue::Object();
  other.Set("format", json::JsonValue::String("something-else"));
  ASSERT_TRUE(json::WriteFile(path, other).ok());
  EXPECT_FALSE(UnitsPipeline::LoadJson(path).ok());
}

TEST(PipelineJsonTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(UnitsPipeline::LoadJson("/no/such/file.json").ok());
}

TEST(PipelineJsonTest, LoadRejectsCorruptedModel) {
  // Start from a valid save, then corrupt it in several ways; every
  // corruption must be rejected cleanly (no crash, non-OK status).
  const std::string path = ::testing::TempDir() + "/pipe_corrupt.json";
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->Pretrain(TinyData().values()).ok());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());
  auto valid = json::ParseFile(path);
  ASSERT_TRUE(valid.ok());

  // 1. Unknown template name.
  {
    json::JsonValue doc = *valid;
    json::JsonValue config = doc.at("config");
    json::JsonValue templates = json::JsonValue::Array();
    templates.Append(json::JsonValue::String("never_registered"));
    config.Set("templates", std::move(templates));
    doc.Set("config", std::move(config));
    ASSERT_TRUE(json::WriteFile(path, doc).ok());
    EXPECT_FALSE(UnitsPipeline::LoadJson(path).ok());
  }
  // 2. Encoder list with the wrong arity.
  {
    json::JsonValue doc = *valid;
    doc.Set("encoders", json::JsonValue::Array());
    ASSERT_TRUE(json::WriteFile(path, doc).ok());
    EXPECT_FALSE(UnitsPipeline::LoadJson(path).ok());
  }
  // 3. Truncated file (invalid JSON).
  {
    std::ofstream out(path);
    out << "{\"format\": \"units-pipeline\", \"version\":";
    out.close();
    EXPECT_FALSE(UnitsPipeline::LoadJson(path).ok());
  }
}

void ExpectBitwiseEqualTensor(const Tensor& a, const Tensor& b,
                              const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    // Exact equality, not AllClose: the JSON format stores floats with
    // enough digits (%.9g) that save -> load is lossless.
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

/// Save -> load -> Predict must reproduce the original model's output
/// bit-for-bit for every task head; serving correctness (model files move
/// between processes) depends on this, not just on being "close".
TEST(PipelineJsonTest, BitwiseRoundTripAllTasks) {
  const char* kTasks[] = {"classification", "clustering", "forecasting",
                          "anomaly_detection", "imputation"};
  for (const char* task : kTasks) {
    SCOPED_TRACE(task);
    auto cfg = TinyConfig(task);
    data::TimeSeriesDataset dataset = TinyData();
    if (std::string(task) == "clustering") {
      cfg.finetune_params.SetInt("num_clusters", 2);
      cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
    } else if (std::string(task) == "forecasting" ||
               std::string(task) == "imputation") {
      data::ForecastSeriesOpts opts;
      opts.num_channels = 2;
      opts.total_length = 300;
      opts.seed = 9;
      dataset = data::MakeForecastDataset(opts, 32, 16, 8);
    } else if (std::string(task) == "anomaly_detection") {
      data::AnomalyOpts opts;
      opts.num_channels = 2;
      opts.total_length = 300;
      opts.seed = 11;
      dataset = data::TimeSeriesDataset(
          data::SlidingWindows(data::MakeCleanSeries(opts), 32, 16));
    }
    const std::string path =
        ::testing::TempDir() + "/bitwise_" + task + ".json";
    auto pipeline = UnitsPipeline::Create(cfg, 2);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE((*pipeline)->FineTune(dataset).ok());
    auto before = (*pipeline)->Predict(dataset.values());
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_TRUE((*pipeline)->SaveJson(path).ok());

    auto loaded = UnitsPipeline::LoadJson(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto after = (*loaded)->Predict(dataset.values());
    ASSERT_TRUE(after.ok()) << after.status().ToString();

    EXPECT_EQ(before->labels, after->labels);
    ExpectBitwiseEqualTensor(before->predictions, after->predictions,
                             std::string(task) + " predictions");
    ExpectBitwiseEqualTensor(before->scores, after->scores,
                             std::string(task) + " scores");
  }
}

TEST(PipelineJsonTest, SavedFileIsValidPrettyJson) {
  const std::string path = ::testing::TempDir() + "/pipe_pretty.json";
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE((*pipeline)->Pretrain(TinyData().values()).ok());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());
  auto parsed = json::ParseFile(path);
  ASSERT_TRUE(parsed.ok());
  // Self-describing: format, version, config, params, encoder weights.
  EXPECT_TRUE(parsed->Contains("format"));
  EXPECT_TRUE(parsed->Contains("version"));
  EXPECT_TRUE(parsed->Contains("config"));
  EXPECT_TRUE(parsed->Contains("pretrain_params"));
  EXPECT_TRUE(parsed->Contains("finetune_params"));
  EXPECT_EQ(parsed->at("encoders").size(), 1u);
}

}  // namespace
}  // namespace units::core
