#include "tensor/tensor_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"

namespace units::ops {
namespace {

TEST(BroadcastTest, ShapeRules) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes({}, {5}), (Shape{5}));
}

TEST(BroadcastTest, ReduceToShapeSumsBroadcastDims) {
  Tensor g = Tensor::Ones({2, 3});
  Tensor r = ReduceToShape(g, {3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r[i], 2.0f);  // summed over the leading dim of size 2
  }
  Tensor r2 = ReduceToShape(g, {2, 1});
  EXPECT_EQ(r2.shape(), (Shape{2, 1}));
  EXPECT_EQ(r2[0], 3.0f);
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[2], 33.0f);
}

TEST(ElementwiseTest, BiasBroadcastSuffix) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_EQ(c.At({0, 0}), 11.0f);
  EXPECT_EQ(c.At({1, 2}), 36.0f);
}

TEST(ElementwiseTest, GeneralBroadcast) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({1, 3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.At({0, 0}), 11.0f);
  EXPECT_EQ(c.At({1, 2}), 32.0f);
}

TEST(ElementwiseTest, SubMulDiv) {
  Tensor a = Tensor::FromVector({2}, {6, 8});
  Tensor b = Tensor::FromVector({2}, {2, 4});
  EXPECT_EQ(Sub(a, b)[0], 4.0f);
  EXPECT_EQ(Mul(a, b)[1], 32.0f);
  EXPECT_EQ(Div(a, b)[1], 2.0f);
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  EXPECT_EQ(AddScalar(a, 5)[0], 6.0f);
  EXPECT_EQ(MulScalar(a, 3)[1], 6.0f);
  EXPECT_EQ(Neg(a)[0], -1.0f);
}

TEST(UnaryTest, MathFunctions) {
  Tensor a = Tensor::FromVector({3}, {0.0f, 1.0f, 4.0f});
  EXPECT_NEAR(Exp(a)[1], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(AddScalar(a, 1.0f))[0], 0.0f, 1e-6);
  EXPECT_EQ(Sqrt(a)[2], 2.0f);
  EXPECT_EQ(Square(a)[2], 16.0f);
  Tensor b = Tensor::FromVector({2}, {-2.0f, 3.0f});
  EXPECT_EQ(Abs(b)[0], 2.0f);
  EXPECT_EQ(Relu(b)[0], 0.0f);
  EXPECT_EQ(Relu(b)[1], 3.0f);
  EXPECT_NEAR(Sigmoid(Tensor::Zeros({1}))[0], 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(Tensor::Zeros({1}))[0], 0.0f, 1e-6);
  EXPECT_EQ(Clamp(b, -1.0f, 1.0f)[0], -1.0f);
  EXPECT_EQ(Clamp(b, -1.0f, 1.0f)[1], 1.0f);
}

TEST(UnaryTest, GeluLimits) {
  Tensor x = Tensor::FromVector({3}, {-10.0f, 0.0f, 10.0f});
  Tensor y = Gelu(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-3);
  EXPECT_NEAR(y[1], 0.0f, 1e-6);
  EXPECT_NEAR(y[2], 10.0f, 1e-3);
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.At({0, 0}), 58.0f);
  EXPECT_EQ(c.At({0, 1}), 64.0f);
  EXPECT_EQ(c.At({1, 0}), 139.0f);
  EXPECT_EQ(c.At({1, 1}), 154.0f);
}

TEST(MatMulTest, IdentityPreserves) {
  Rng rng(3);
  Tensor a = Tensor::RandNormal({4, 4}, &rng);
  Tensor eye = Tensor::Zeros({4, 4});
  for (int i = 0; i < 4; ++i) {
    eye.At({i, i}) = 1.0f;
  }
  EXPECT_TRUE(AllClose(MatMul(a, eye), a));
}

TEST(BatchedMatMulTest, MatchesPerBatchMatMul) {
  Rng rng(4);
  Tensor a = Tensor::RandNormal({3, 2, 5}, &rng);
  Tensor b = Tensor::RandNormal({3, 5, 4}, &rng);
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 4}));
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ai = Slice(a, 0, bi, 1).Reshape({2, 5});
    Tensor bi_t = Slice(b, 0, bi, 1).Reshape({5, 4});
    Tensor ci = Slice(c, 0, bi, 1).Reshape({2, 4});
    EXPECT_TRUE(AllClose(ci, MatMul(ai, bi_t)));
  }
}

TEST(TransposeTest, TwoD) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.At({0, 1}), 4.0f);
  EXPECT_EQ(t.At({2, 0}), 3.0f);
}

TEST(TransposeTest, InnerAxesOf4D) {
  Rng rng(5);
  Tensor a = Tensor::RandNormal({2, 3, 4, 5}, &rng);
  Tensor t = Transpose(a, 1, 2);
  EXPECT_EQ(t.shape(), (Shape{2, 4, 3, 5}));
  EXPECT_EQ(t.At({1, 2, 1, 3}), a.At({1, 1, 2, 3}));
  // Double transpose restores.
  EXPECT_TRUE(AllClose(Transpose(t, 1, 2), a));
}

TEST(ReductionTest, SumAllAndMeanAll) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_EQ(SumAll(a), 10.0f);
  EXPECT_EQ(MeanAll(a), 2.5f);
  EXPECT_EQ(MaxAll(a), 4.0f);
  EXPECT_EQ(MinAll(a), 1.0f);
}

TEST(ReductionTest, SumAlongAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0[0], 5.0f);
  EXPECT_EQ(s0[2], 9.0f);
  Tensor s1 = Sum(a, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1[0], 6.0f);
  EXPECT_EQ(s1[1], 15.0f);
}

TEST(ReductionTest, MeanAndMaxAlongAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, 4, 2, 6});
  Tensor m = Mean(a, 1);
  EXPECT_NEAR(m[0], 3.0f, 1e-6);
  Tensor mx = Max(a, 1);
  EXPECT_EQ(mx[0], 5.0f);
  EXPECT_EQ(mx[1], 6.0f);
}

TEST(ReductionTest, ArgMax) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, 6, 2, 4});
  Tensor arg = ArgMax(a, 1);
  EXPECT_EQ(arg[0], 1.0f);
  EXPECT_EQ(arg[1], 0.0f);
}

TEST(ReductionTest, MaxWithArgReturnsFlatOffsets) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, 6, 2, 4});
  auto [values, args] = MaxWithArg(a, 1);
  EXPECT_EQ(values[0], 5.0f);
  EXPECT_EQ(args[0], 1);
  EXPECT_EQ(args[1], 3);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(6);
  Tensor a = Tensor::RandNormal({4, 7}, &rng, 0.0f, 3.0f);
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < 4; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      row += s.At({i, j});
      EXPECT_GT(s.At({i, j}), 0.0f);
    }
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_FALSE(HasNonFinite(s));
  EXPECT_NEAR(s[0], 1.0f / 3.0f, 1e-5);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(7);
  Tensor a = Tensor::RandNormal({3, 5}, &rng);
  Tensor ls = LogSoftmax(a, 1);
  Tensor log_s = Log(Softmax(a, 1));
  EXPECT_TRUE(AllClose(ls, log_s, 1e-4f, 1e-5f));
}

// Reference softmax via the old composed op chain the fused kernel
// replaced: max -> sub -> exp -> sum -> div, five full passes.
Tensor ComposedSoftmax(const Tensor& a, int axis) {
  Tensor m = Max(a, axis, /*keepdim=*/true);
  Tensor e = Exp(Sub(a, m));
  return Div(e, Sum(e, axis, /*keepdim=*/true));
}

TEST(SoftmaxFusedTest, MatchesComposedReference) {
  Rng rng(11);
  Tensor a = Tensor::RandNormal({3, 17}, &rng, 0.0f, 2.0f);
  EXPECT_TRUE(AllClose(SoftmaxFused(a, 1), ComposedSoftmax(a, 1), 1e-6f,
                       1e-7f));
  Tensor b = Tensor::RandNormal({4, 5, 6}, &rng);
  // Middle axis: strided rows (inner != 1).
  EXPECT_TRUE(AllClose(SoftmaxFused(b, 1), ComposedSoftmax(b, 1), 1e-6f,
                       1e-7f));
  EXPECT_TRUE(AllClose(SoftmaxFused(b, 0), ComposedSoftmax(b, 0), 1e-6f,
                       1e-7f));
}

TEST(SoftmaxFusedTest, LogSoftmaxFusedMatchesLogOfFused) {
  Rng rng(12);
  Tensor a = Tensor::RandNormal({2, 9, 4}, &rng, 0.0f, 3.0f);
  for (int axis : {0, 1, 2}) {
    EXPECT_TRUE(AllClose(LogSoftmaxFused(a, axis),
                         Log(SoftmaxFused(a, axis)), 1e-5f, 1e-6f));
  }
}

TEST(SoftmaxFusedTest, DeterministicAcrossThreadCounts) {
  Rng rng(13);
  Tensor a = Tensor::RandNormal({64, 33}, &rng, 0.0f, 2.0f);
  base::SetNumThreads(1);
  Tensor s1 = SoftmaxFused(a, 1);
  base::SetNumThreads(8);
  Tensor s8 = SoftmaxFused(a, 1);
  base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(s1[i], s8[i]) << "at " << i;
  }
}

TEST(SoftmaxBackwardTest, MatchesJacobianProduct) {
  // For one row, dL/dx_i = p_i * (g_i - sum_j g_j p_j). Check against the
  // explicit Jacobian J_ij = p_i (delta_ij - p_j).
  Rng rng(14);
  Tensor a = Tensor::RandNormal({1, 6}, &rng);
  Tensor g = Tensor::RandNormal({1, 6}, &rng);
  Tensor p = SoftmaxFused(a, 1);
  Tensor dx = SoftmaxBackward(p, g, 1);
  for (int64_t i = 0; i < 6; ++i) {
    float want = 0.0f;
    for (int64_t j = 0; j < 6; ++j) {
      const float jac = p[i] * ((i == j ? 1.0f : 0.0f) - p[j]);
      want += jac * g[j];
    }
    EXPECT_NEAR(dx[i], want, 1e-6f);
  }
}

TEST(ShapeOpsTest, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_EQ(c0.At({1, 0}), 3.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_EQ(c1.At({0, 3}), 4.0f);
}

TEST(ShapeOpsTest, SliceMiddle) {
  Tensor a = Tensor::FromVector({5}, {0, 1, 2, 3, 4});
  Tensor s = Slice(a, 0, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_EQ(s[0], 1.0f);
  EXPECT_EQ(s[2], 3.0f);
}

TEST(ShapeOpsTest, SliceInnerAxis) {
  Tensor a = Tensor::FromVector({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.At({0, 0}), 1.0f);
  EXPECT_EQ(s.At({1, 1}), 6.0f);
}

TEST(ShapeOpsTest, ConcatInvertsSlice) {
  Rng rng(8);
  Tensor a = Tensor::RandNormal({3, 6}, &rng);
  Tensor left = Slice(a, 1, 0, 2);
  Tensor right = Slice(a, 1, 2, 4);
  EXPECT_TRUE(AllClose(Concat({left, right}, 1), a));
}

TEST(ShapeOpsTest, GatherAndScatterRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_EQ(g.At({0, 0}), 5.0f);
  EXPECT_EQ(g.At({1, 1}), 2.0f);
  // Scatter-add is the adjoint: repeated rows accumulate.
  Tensor back = ScatterAddRows(g, {2, 0, 2}, 3);
  EXPECT_EQ(back.At({0, 0}), 1.0f);
  EXPECT_EQ(back.At({2, 0}), 10.0f);  // 5 + 5
  EXPECT_EQ(back.At({1, 0}), 0.0f);
}

TEST(ShapeOpsTest, StackAddsLeadingAxis) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.At({1, 0}), 3.0f);
}

TEST(Im2ColTest, IdentityKernelRoundTrip) {
  Rng rng(9);
  Tensor x = Tensor::RandNormal({2, 3, 8}, &rng);
  // Kernel 1, no padding: columns are just a reordering of x.
  Tensor cols = Im2Col1D(x, 1, 1, 0, 0);
  EXPECT_EQ(cols.shape(), (Shape{3, 16}));
  Tensor back = Col2Im1D(cols, x.shape(), 1, 1, 0, 0);
  EXPECT_TRUE(AllClose(back, x));
}

TEST(Im2ColTest, OutputLengthWithPaddingAndDilation) {
  Tensor x = Tensor::Zeros({1, 1, 10});
  // kernel 3 dilation 2: receptive 4; same-pad 2+2 keeps T = 10.
  Tensor cols = Im2Col1D(x, 3, 2, 2, 2);
  EXPECT_EQ(cols.shape(), (Shape{3, 10}));
}

TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> for random x, y: the defining property
  // of an adjoint pair, which is exactly what conv backward relies on.
  Rng rng(10);
  Tensor x = Tensor::RandNormal({2, 2, 7}, &rng);
  Tensor cols = Im2Col1D(x, 3, 1, 1, 1);
  Tensor y = Tensor::RandNormal(cols.shape(), &rng);
  double lhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  Tensor back = Col2Im1D(y, x.shape(), 3, 1, 1, 1);
  double rhs = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(MiscTest, AllCloseAndNonFinite) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = Tensor::FromVector({2}, {1.1f, 2.0f});
  EXPECT_FALSE(AllClose(a, c));
  Tensor nan = Tensor::FromVector({1}, {std::nanf("")});
  EXPECT_TRUE(HasNonFinite(nan));
  EXPECT_FALSE(HasNonFinite(a));
}

TEST(MiscTest, NormAndDistance) {
  Tensor a = Tensor::FromVector({2}, {3.0f, 4.0f});
  EXPECT_NEAR(Norm(a), 5.0f, 1e-6);
  Tensor b = Tensor::Zeros({2});
  EXPECT_NEAR(L2Distance(a, b), 5.0f, 1e-6);
}

}  // namespace
}  // namespace units::ops
