// Property test: the im2col-based Conv1d must agree with a naive direct
// convolution across a sweep of shapes, dilations, and paddings, and its
// backward must pass finite-difference checks in the same sweep.

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "base/rng.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;

struct ConvCase {
  std::string name;
  int64_t batch;
  int64_t c_in;
  int64_t c_out;
  int64_t t;
  int64_t kernel;
  int64_t dilation;
  int64_t pad_left;
  int64_t pad_right;
};

/// Direct triple-loop convolution — slow but obviously correct.
Tensor NaiveConv1d(const Tensor& input, const Tensor& weight,
                   const Tensor& bias, int64_t dilation, int64_t pad_left,
                   int64_t pad_right) {
  const int64_t n = input.dim(0);
  const int64_t c_in = input.dim(1);
  const int64_t t = input.dim(2);
  const int64_t c_out = weight.dim(0);
  const int64_t kernel = weight.dim(2);
  const int64_t t_out = t + pad_left + pad_right - (kernel - 1) * dilation;
  Tensor out = Tensor::Zeros({n, c_out, t_out});
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t co = 0; co < c_out; ++co) {
      for (int64_t to = 0; to < t_out; ++to) {
        float acc = bias.numel() > 0 ? bias[co] : 0.0f;
        for (int64_t ci = 0; ci < c_in; ++ci) {
          for (int64_t k = 0; k < kernel; ++k) {
            const int64_t ti = to - pad_left + k * dilation;
            if (ti >= 0 && ti < t) {
              acc += input.At({ni, ci, ti}) * weight.At({co, ci, k});
            }
          }
        }
        out.At({ni, co, to}) = acc;
      }
    }
  }
  return out;
}

class ConvReferenceTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReferenceTest, ForwardMatchesNaive) {
  const ConvCase& c = GetParam();
  Rng rng(41);
  Tensor input = Tensor::RandNormal({c.batch, c.c_in, c.t}, &rng);
  Tensor weight = Tensor::RandNormal({c.c_out, c.c_in, c.kernel}, &rng);
  Tensor bias = Tensor::RandNormal({c.c_out}, &rng);

  ag::NoGradGuard no_grad;
  Tensor fast = ag::Conv1d(ag::Variable(input), ag::Variable(weight),
                           ag::Variable(bias), c.dilation, c.pad_left,
                           c.pad_right)
                    .data();
  Tensor naive =
      NaiveConv1d(input, weight, bias, c.dilation, c.pad_left, c.pad_right);
  EXPECT_TRUE(ops::AllClose(fast, naive, 1e-4f, 1e-4f)) << c.name;
}

TEST_P(ConvReferenceTest, BackwardPassesGradCheck) {
  const ConvCase& c = GetParam();
  Rng rng(43);
  ag::Variable input(Tensor::RandNormal({c.batch, c.c_in, c.t}, &rng), true);
  ag::Variable weight(
      Tensor::RandNormal({c.c_out, c.c_in, c.kernel}, &rng), true);
  ag::Variable bias(Tensor::RandNormal({c.c_out}, &rng), true);
  auto fn = [&c](const std::vector<ag::Variable>& v) {
    return ag::MeanAll(ag::Square(
        ag::Conv1d(v[0], v[1], v[2], c.dilation, c.pad_left, c.pad_right)));
  };
  const auto result =
      ag::CheckGradients(fn, {input, weight, bias});
  EXPECT_TRUE(result.passed) << c.name << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvReferenceTest,
    ::testing::Values(
        ConvCase{"pointwise", 2, 3, 4, 8, 1, 1, 0, 0},
        ConvCase{"same_k3", 2, 2, 3, 10, 3, 1, 1, 1},
        ConvCase{"causal_k3", 1, 2, 2, 12, 3, 1, 2, 0},
        ConvCase{"dilated2", 2, 1, 2, 12, 3, 2, 2, 2},
        ConvCase{"dilated4_causal", 1, 2, 2, 16, 3, 4, 8, 0},
        ConvCase{"wide_kernel", 1, 1, 1, 9, 5, 1, 2, 2},
        ConvCase{"valid_shrinks", 2, 2, 2, 9, 3, 1, 0, 0},
        ConvCase{"asymmetric_pad", 1, 1, 2, 7, 2, 1, 1, 0}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace units
