#include "nn/attention.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace units::nn {
namespace {

namespace ag = ::units::autograd;

TEST(PositionalEncodingTest, ShapeAndRange) {
  Tensor pe = SinusoidalPositionalEncoding(16, 8);
  EXPECT_EQ(pe.shape(), (Shape{16, 8}));
  EXPECT_LE(ops::MaxAll(pe), 1.0f);
  EXPECT_GE(ops::MinAll(pe), -1.0f);
}

TEST(PositionalEncodingTest, FirstRowIsSinCosOfZero) {
  Tensor pe = SinusoidalPositionalEncoding(4, 6);
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(pe.At({0, c}), c % 2 == 0 ? 0.0f : 1.0f, 1e-6);
  }
}

TEST(PositionalEncodingTest, RowsAreDistinct) {
  Tensor pe = SinusoidalPositionalEncoding(32, 16);
  Tensor row0 = ops::Slice(pe, 0, 0, 1);
  Tensor row7 = ops::Slice(pe, 0, 7, 1);
  EXPECT_GT(ops::L2Distance(row0, row7), 0.5f);
}

TEST(MultiHeadAttentionTest, PreservesShape) {
  Rng rng(1);
  MultiHeadAttention attn(16, 4, &rng);
  Variable x(Tensor::RandNormal({2, 10, 16}, &rng));
  EXPECT_EQ(attn.Forward(x).shape(), (Shape{2, 10, 16}));
}

TEST(MultiHeadAttentionTest, GradientsFlowToAllParams) {
  Rng rng(2);
  MultiHeadAttention attn(8, 2, &rng);
  Variable x(Tensor::RandNormal({1, 6, 8}, &rng), true);
  ag::MeanAll(ag::Square(attn.Forward(x))).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const auto& [name, p] : attn.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

TEST(MultiHeadAttentionTest, PermutationEquivariance) {
  // Self-attention without positions is permutation-equivariant over time:
  // permuting input timesteps permutes outputs identically.
  Rng rng(3);
  MultiHeadAttention attn(8, 2, &rng, /*dropout=*/0.0f);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, 4, 8}, &rng);
  ag::NoGradGuard no_grad;
  Tensor y = attn.Forward(Variable(x)).data();

  // Swap timesteps 1 and 2.
  Tensor xp = x.Clone();
  for (int64_t c = 0; c < 8; ++c) {
    std::swap(xp.At({0, 1, c}), xp.At({0, 2, c}));
  }
  Tensor yp = attn.Forward(Variable(xp)).data();
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(yp.At({0, 1, c}), y.At({0, 2, c}), 1e-4);
    EXPECT_NEAR(yp.At({0, 2, c}), y.At({0, 1, c}), 1e-4);
    EXPECT_NEAR(yp.At({0, 0, c}), y.At({0, 0, c}), 1e-4);
  }
}

TEST(TransformerEncoderLayerTest, PreservesShape) {
  Rng rng(4);
  TransformerEncoderLayer layer(16, 4, 32, &rng, 0.0f);
  Variable x(Tensor::RandNormal({3, 12, 16}, &rng));
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{3, 12, 16}));
}

TEST(TransformerEncoderLayerTest, ResidualPathKeepsSignal) {
  // Output should correlate with input thanks to the residual connections
  // (not collapse to a constant).
  Rng rng(5);
  TransformerEncoderLayer layer(8, 2, 16, &rng, 0.0f);
  layer.SetTraining(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::RandNormal({1, 6, 8}, &rng, 0.0f, 2.0f);
  Tensor y = layer.Forward(Variable(x)).data();
  EXPECT_LT(ops::L2Distance(y, x), ops::Norm(x) * 2.0f);
  EXPECT_GT(ops::Norm(ops::Sub(y, x)), 1e-3f);  // it does transform
}

TEST(TransformerBackboneTest, MapsChannelsToReprDim) {
  Rng rng(6);
  TransformerBackbone backbone(3, 16, 24, 2, 4, &rng, 0.0f);
  Variable x(Tensor::RandNormal({2, 3, 20}, &rng));
  EXPECT_EQ(backbone.Forward(x).shape(), (Shape{2, 24, 20}));
  EXPECT_EQ(backbone.repr_dim(), 24);
}

TEST(TransformerBackboneTest, PositionalEncodingBreaksTimeSymmetry) {
  // With positions added, a constant input still yields time-varying
  // representations.
  Rng rng(7);
  TransformerBackbone backbone(1, 8, 8, 1, 2, &rng, 0.0f);
  backbone.SetTraining(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::Ones({1, 1, 10});
  Tensor y = backbone.Forward(Variable(x)).data();
  Tensor t0 = ops::Slice(y, 2, 0, 1);
  Tensor t5 = ops::Slice(y, 2, 5, 1);
  EXPECT_GT(ops::L2Distance(t0, t5), 1e-3f);
}

TEST(TransformerBackboneTest, TrainsOnToyRegression) {
  // One gradient step reduces a simple reconstruction loss.
  Rng rng(8);
  TransformerBackbone backbone(2, 8, 2, 1, 2, &rng, 0.0f);
  Tensor x = Tensor::RandNormal({4, 2, 12}, &rng);
  auto loss_value = [&]() {
    Variable out = backbone.Forward(Variable(x));
    return ag::MseLoss(out, Variable(x));
  };
  Variable loss = loss_value();
  const float before = loss.item();
  backbone.ZeroGrad();
  loss.Backward();
  for (Variable& p : backbone.Parameters()) {
    float* w = p.data().data();
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      w[i] -= 0.01f * g[i];
    }
  }
  EXPECT_LT(loss_value().item(), before);
}

}  // namespace
}  // namespace units::nn
