#include "nn/attention.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "base/parallel.h"
#include "tensor/tensor_ops.h"

namespace units::nn {
namespace {

namespace ag = ::units::autograd;

/// Flips UNITS_ATTN for a scope; UseFusedAttention() re-reads it per call.
class AttnPathGuard {
 public:
  explicit AttnPathGuard(const char* value) {
    setenv("UNITS_ATTN", value, /*overwrite=*/1);
  }
  ~AttnPathGuard() { unsetenv("UNITS_ATTN"); }
};

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() {
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

/// Max abs difference relative to the reference tensor's max magnitude
/// (scaled max-norm). Per-element relative error is meaningless on the
/// near-zero tail of attention outputs: the paths reassociate float sums,
/// so elements of magnitude ~1e-5 legitimately differ in their low bits.
float MaxRelDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float diff = 0.0f;
  float scale = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(a[i] - b[i]));
    scale = std::max(scale, std::fabs(b[i]));
  }
  return diff / std::max(1e-6f, scale);
}

TEST(PositionalEncodingTest, ShapeAndRange) {
  Tensor pe = SinusoidalPositionalEncoding(16, 8);
  EXPECT_EQ(pe.shape(), (Shape{16, 8}));
  EXPECT_LE(ops::MaxAll(pe), 1.0f);
  EXPECT_GE(ops::MinAll(pe), -1.0f);
}

TEST(PositionalEncodingTest, FirstRowIsSinCosOfZero) {
  Tensor pe = SinusoidalPositionalEncoding(4, 6);
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(pe.At({0, c}), c % 2 == 0 ? 0.0f : 1.0f, 1e-6);
  }
}

TEST(PositionalEncodingTest, RowsAreDistinct) {
  Tensor pe = SinusoidalPositionalEncoding(32, 16);
  Tensor row0 = ops::Slice(pe, 0, 0, 1);
  Tensor row7 = ops::Slice(pe, 0, 7, 1);
  EXPECT_GT(ops::L2Distance(row0, row7), 0.5f);
}

TEST(MultiHeadAttentionTest, PreservesShape) {
  Rng rng(1);
  MultiHeadAttention attn(16, 4, &rng);
  Variable x(Tensor::RandNormal({2, 10, 16}, &rng));
  EXPECT_EQ(attn.Forward(x).shape(), (Shape{2, 10, 16}));
}

TEST(MultiHeadAttentionTest, GradientsFlowToAllParams) {
  Rng rng(2);
  MultiHeadAttention attn(8, 2, &rng);
  Variable x(Tensor::RandNormal({1, 6, 8}, &rng), true);
  ag::MeanAll(ag::Square(attn.Forward(x))).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const auto& [name, p] : attn.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

TEST(MultiHeadAttentionTest, PermutationEquivariance) {
  // Self-attention without positions is permutation-equivariant over time:
  // permuting input timesteps permutes outputs identically.
  Rng rng(3);
  MultiHeadAttention attn(8, 2, &rng, /*dropout=*/0.0f);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, 4, 8}, &rng);
  ag::NoGradGuard no_grad;
  Tensor y = attn.Forward(Variable(x)).data();

  // Swap timesteps 1 and 2.
  Tensor xp = x.Clone();
  for (int64_t c = 0; c < 8; ++c) {
    std::swap(xp.At({0, 1, c}), xp.At({0, 2, c}));
  }
  Tensor yp = attn.Forward(Variable(xp)).data();
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(yp.At({0, 1, c}), y.At({0, 2, c}), 1e-4);
    EXPECT_NEAR(yp.At({0, 2, c}), y.At({0, 1, c}), 1e-4);
    EXPECT_NEAR(yp.At({0, 0, c}), y.At({0, 0, c}), 1e-4);
  }
}

TEST(PositionalEncodingTest, CacheReturnsSharedStorage) {
  Tensor a = SinusoidalPositionalEncoding(24, 12);
  Tensor b = SinusoidalPositionalEncoding(24, 12);
  EXPECT_TRUE(a.SharesStorageWith(b));
  // A different key computes a fresh table.
  Tensor c = SinusoidalPositionalEncoding(25, 12);
  EXPECT_FALSE(a.SharesStorageWith(c));
  // And the cached values stay correct (spot-check against the formula).
  EXPECT_NEAR(b.At({3, 0}), std::sin(3.0), 1e-6);
  EXPECT_NEAR(b.At({3, 1}), std::cos(3.0), 1e-6);
}

// T = 50 is deliberately not a multiple of kAttnRowBlock = 32 so every
// fused test here also covers the partial final row-block.
TEST(FusedAttentionTest, EvalMatchesUnfused) {
  Rng rng(21);
  MultiHeadAttention attn(16, 4, &rng, /*dropout=*/0.0f);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({2, 50, 16}, &rng);
  ag::NoGradGuard no_grad;
  Tensor fused = attn.Forward(Variable(x)).data();
  Tensor unfused;
  {
    AttnPathGuard unfused_path("unfused");
    unfused = attn.Forward(Variable(x)).data();
  }
  EXPECT_LE(MaxRelDiff(fused, unfused), 1e-5f);
}

TEST(FusedAttentionTest, TrainingGradsMatchUnfused) {
  Rng rng(22);
  MultiHeadAttention attn(8, 2, &rng, /*dropout=*/0.0f);
  Tensor x = Tensor::RandNormal({1, 50, 8}, &rng);

  auto run = [&]() {
    attn.ZeroGrad();
    Variable in(x.Clone(), /*requires_grad=*/true);
    ag::MeanAll(ag::Square(attn.Forward(in))).Backward();
    std::vector<Tensor> grads;
    grads.push_back(in.grad().Clone());
    for (const auto& [name, p] : attn.NamedParameters()) {
      grads.push_back(p.grad().Clone());
    }
    return grads;
  };

  std::vector<Tensor> fused = run();
  std::vector<Tensor> unfused;
  {
    AttnPathGuard unfused_path("unfused");
    unfused = run();
  }
  ASSERT_EQ(fused.size(), unfused.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_LE(MaxRelDiff(fused[i], unfused[i]), 1e-5f) << "grad " << i;
  }
}

TEST(FusedAttentionTest, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(23);
  Tensor q = Tensor::RandNormal({3, 50, 8}, &rng);
  Tensor k = Tensor::RandNormal({3, 50, 8}, &rng);
  Tensor v = Tensor::RandNormal({3, 50, 8}, &rng);
  ThreadCountGuard guard;

  auto run = [&]() {
    Variable qv(q.Clone(), true), kv(k.Clone(), true), vv(v.Clone(), true);
    Variable out = ag::ScaledDotAttention(qv, kv, vv, 0.35f);
    Tensor fwd = out.data().Clone();
    ag::MeanAll(ag::Square(out)).Backward();
    return std::vector<Tensor>{fwd, qv.grad().Clone(), kv.grad().Clone(),
                               vv.grad().Clone()};
  };

  base::SetNumThreads(1);
  std::vector<Tensor> serial = run();
  base::SetNumThreads(8);
  std::vector<Tensor> threaded = run();
  for (size_t t = 0; t < serial.size(); ++t) {
    ASSERT_EQ(serial[t].numel(), threaded[t].numel());
    for (int64_t i = 0; i < serial[t].numel(); ++i) {
      ASSERT_EQ(serial[t][i], threaded[t][i]) << "tensor " << t << " at " << i;
    }
  }
}

TEST(FusedAttentionTest, EvalNeverMaterializesProbabilities) {
  Rng rng(24);
  const int64_t nh = 8, t = 64, hd = 8;  // [NH, T, T] would be 32768 floats
  Tensor q = Tensor::RandNormal({nh, t, hd}, &rng);
  Tensor k = Tensor::RandNormal({nh, t, hd}, &rng);
  Tensor v = Tensor::RandNormal({nh, t, hd}, &rng);
  {
    ag::NoGradGuard no_grad;
    ResetTensorAllocStats();
    Tensor out = ag::ScaledDotAttention(Variable(q), Variable(k), Variable(v),
                                        0.35f)
                     .data();
    const TensorAllocStats stats = GetTensorAllocStats();
    // The streaming kernel allocates only the [NH, T, hd] output (plus
    // per-thread std::vector scratch, which is not tensor storage): the
    // largest tensor allocated during the forward must be far below the
    // [NH, T, T] probability tensor the composed path materializes.
    EXPECT_LT(stats.largest_floats, nh * t * t);
    EXPECT_EQ(stats.largest_floats, nh * t * hd);
    EXPECT_EQ(out.numel(), nh * t * hd);
  }

  // Training (grads required) saves exactly the one probability tensor.
  Variable qv(q, /*requires_grad=*/true);
  ResetTensorAllocStats();
  Variable tr = ag::ScaledDotAttention(qv, Variable(k), Variable(v), 0.35f);
  EXPECT_EQ(GetTensorAllocStats().largest_floats, nh * t * t);
}

TEST(FusedAttentionTest, DropoutMaskPathMatchesUnfusedStatistically) {
  // With dropout active the two paths consume RNG draws identically
  // (SampleMask preserves Forward's draw order), so seeding the module RNG
  // the same way must give identical outputs across paths.
  Rng rng_a(25);
  MultiHeadAttention attn_a(8, 2, &rng_a, /*dropout=*/0.25f);
  Rng rng_b(25);
  MultiHeadAttention attn_b(8, 2, &rng_b, /*dropout=*/0.25f);
  Rng data_rng(26);
  Tensor x = Tensor::RandNormal({1, 20, 8}, &data_rng);
  ag::NoGradGuard no_grad;
  Tensor fused = attn_a.Forward(Variable(x)).data();
  Tensor unfused;
  {
    AttnPathGuard unfused_path("unfused");
    unfused = attn_b.Forward(Variable(x)).data();
  }
  EXPECT_LE(MaxRelDiff(fused, unfused), 1e-5f);
}

TEST(TransformerEncoderLayerTest, PreservesShape) {
  Rng rng(4);
  TransformerEncoderLayer layer(16, 4, 32, &rng, 0.0f);
  Variable x(Tensor::RandNormal({3, 12, 16}, &rng));
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{3, 12, 16}));
}

TEST(TransformerEncoderLayerTest, ResidualPathKeepsSignal) {
  // Output should correlate with input thanks to the residual connections
  // (not collapse to a constant).
  Rng rng(5);
  TransformerEncoderLayer layer(8, 2, 16, &rng, 0.0f);
  layer.SetTraining(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::RandNormal({1, 6, 8}, &rng, 0.0f, 2.0f);
  Tensor y = layer.Forward(Variable(x)).data();
  EXPECT_LT(ops::L2Distance(y, x), ops::Norm(x) * 2.0f);
  EXPECT_GT(ops::Norm(ops::Sub(y, x)), 1e-3f);  // it does transform
}

TEST(TransformerBackboneTest, MapsChannelsToReprDim) {
  Rng rng(6);
  TransformerBackbone backbone(3, 16, 24, 2, 4, &rng, 0.0f);
  Variable x(Tensor::RandNormal({2, 3, 20}, &rng));
  EXPECT_EQ(backbone.Forward(x).shape(), (Shape{2, 24, 20}));
  EXPECT_EQ(backbone.repr_dim(), 24);
}

TEST(TransformerBackboneTest, PositionalEncodingBreaksTimeSymmetry) {
  // With positions added, a constant input still yields time-varying
  // representations.
  Rng rng(7);
  TransformerBackbone backbone(1, 8, 8, 1, 2, &rng, 0.0f);
  backbone.SetTraining(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::Ones({1, 1, 10});
  Tensor y = backbone.Forward(Variable(x)).data();
  Tensor t0 = ops::Slice(y, 2, 0, 1);
  Tensor t5 = ops::Slice(y, 2, 5, 1);
  EXPECT_GT(ops::L2Distance(t0, t5), 1e-3f);
}

TEST(TransformerBackboneTest, TrainsOnToyRegression) {
  // One gradient step reduces a simple reconstruction loss.
  Rng rng(8);
  TransformerBackbone backbone(2, 8, 2, 1, 2, &rng, 0.0f);
  Tensor x = Tensor::RandNormal({4, 2, 12}, &rng);
  auto loss_value = [&]() {
    Variable out = backbone.Forward(Variable(x));
    return ag::MseLoss(out, Variable(x));
  };
  Variable loss = loss_value();
  const float before = loss.item();
  backbone.ZeroGrad();
  loss.Backward();
  for (Variable& p : backbone.Parameters()) {
    float* w = p.data().data();
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      w[i] -= 0.01f * g[i];
    }
  }
  EXPECT_LT(loss_value().item(), before);
}

}  // namespace
}  // namespace units::nn
