#include "base/string_util.h"

#include <gtest/gtest.h>

namespace units {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrJoinTest, JoinsWithDelimiter) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, ","), "one");
}

TEST(StrJoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrSplit(StrJoin(parts, "|"), '|'), parts);
}

TEST(StrStripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StrStrip("  hello \t\n"), "hello");
  EXPECT_EQ(StrStrip("nothing"), "nothing");
  EXPECT_EQ(StrStrip("   "), "");
  EXPECT_EQ(StrStrip("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(500, 'a');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace units
