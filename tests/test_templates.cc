// Tests for the five self-supervised pre-training templates. Kept small
#include <cmath>
// (tiny encoders, short series) so the whole suite runs in seconds on CPU.

#include "core/pretrain/templates.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

namespace ag = ::units::autograd;

ParamSet TinyParams() {
  ParamSet p;
  p.SetInt("epochs", 3);
  p.SetInt("batch_size", 8);
  p.SetInt("hidden_channels", 8);
  p.SetInt("repr_dim", 12);
  p.SetInt("num_blocks", 1);
  p.SetInt("neg_samples", 2);
  p.SetInt("instance_timestamps", 2);
  return p;
}

Tensor TinyData(int64_t n = 16, int64_t d = 2, int64_t t = 32) {
  data::ClassificationOpts opts;
  opts.num_samples = n;
  opts.num_classes = 2;
  opts.num_channels = d;
  opts.length = t;
  opts.seed = 3;
  return data::MakeClassificationDataset(opts).values();
}

class TemplateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TemplateTest, FitTransformContract) {
  auto tmpl = MakePretrainTemplate(GetParam(), TinyParams(), 2, 11);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  Tensor x = TinyData();
  ASSERT_TRUE((*tmpl)->Fit(x).ok());

  // Transform produces pooled [N, K].
  Tensor z = (*tmpl)->Transform(x);
  EXPECT_EQ(z.shape(), (Shape{16, 12}));
  EXPECT_FALSE(ops::HasNonFinite(z));

  // TransformPerTimestep produces [N, K, T].
  Tensor zt = (*tmpl)->TransformPerTimestep(x);
  EXPECT_EQ(zt.shape(), (Shape{16, 12, 32}));
  EXPECT_FALSE(ops::HasNonFinite(zt));
}

TEST_P(TemplateTest, LossHistoryRecordedAndFinite) {
  auto tmpl = MakePretrainTemplate(GetParam(), TinyParams(), 2, 13);
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->Fit(TinyData()).ok());
  const auto& history = (*tmpl)->loss_history();
  ASSERT_EQ(history.size(), 3u);
  for (float loss : history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST_P(TemplateTest, LossDecreasesOverTraining) {
  ParamSet p = TinyParams();
  p.SetInt("epochs", 15);
  p.SetInt("batch_size", 16);
  auto tmpl = MakePretrainTemplate(GetParam(), p, 2, 17);
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->Fit(TinyData(32)).ok());
  const auto& history = (*tmpl)->loss_history();
  // Mean of the last three epochs below the first epoch's loss (the
  // objectives are stochastic — crops, masks, views — so single-epoch
  // comparisons are noisy).
  const float late = (history[history.size() - 1] +
                      history[history.size() - 2] +
                      history[history.size() - 3]) / 3.0f;
  EXPECT_LT(late, history[0]) << GetParam();
}

TEST_P(TemplateTest, BuildLossIsDifferentiableScalar) {
  auto tmpl = MakePretrainTemplate(GetParam(), TinyParams(), 2, 19);
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->Initialize().ok());
  Rng rng(23);
  Variable loss = (*tmpl)->BuildLoss(TinyData(8), &rng);
  EXPECT_EQ(loss.numel(), 1);
  EXPECT_TRUE(loss.requires_grad());
  loss.Backward();
  bool any_grad = false;
  for (const Variable& param : (*tmpl)->encoder()->Parameters()) {
    if (param.has_grad() && ops::Norm(param.grad()) > 0.0f) {
      any_grad = true;
      break;
    }
  }
  EXPECT_TRUE(any_grad);
}

TEST_P(TemplateTest, EncodeMatchesTransform) {
  auto tmpl = MakePretrainTemplate(GetParam(), TinyParams(), 2, 29);
  ASSERT_TRUE(tmpl.ok());
  Tensor x = TinyData(6);
  ASSERT_TRUE((*tmpl)->Fit(x).ok());
  Tensor z_transform = (*tmpl)->Transform(x);
  ag::NoGradGuard no_grad;
  (*tmpl)->encoder()->SetTraining(false);
  Variable z_encode = (*tmpl)->Encode(Variable(x));
  EXPECT_TRUE(ops::AllClose(z_transform, z_encode.data(), 1e-4f, 1e-4f));
}

TEST_P(TemplateTest, RejectsBadInputs) {
  auto tmpl = MakePretrainTemplate(GetParam(), TinyParams(), 2, 31);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE((*tmpl)->Fit(Tensor::Zeros({4, 8})).ok());       // rank 2
  EXPECT_FALSE((*tmpl)->Fit(Tensor::Zeros({4, 3, 16})).ok());   // channels
  EXPECT_FALSE((*tmpl)->Fit(Tensor::Zeros({1, 2, 16})).ok());   // one sample
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, TemplateTest,
    ::testing::Values("whole_series_contrastive", "subsequence_contrastive",
                      "timestamp_contrastive", "masked_autoregression",
                      "hybrid"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(TemplateScheduleTest, CosineScheduleTrains) {
  ParamSet p = TinyParams();
  p.SetString("lr_schedule", "cosine");
  p.SetInt("epochs", 6);
  WholeSeriesContrastive tmpl(p, 2, 55);
  ASSERT_TRUE(tmpl.Fit(TinyData()).ok());
  EXPECT_EQ(tmpl.loss_history().size(), 6u);
  for (float loss : tmpl.loss_history()) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(TemplateDeterminismTest, SameSeedSameWeights) {
  Tensor x = TinyData();
  auto a = MakePretrainTemplate("whole_series_contrastive", TinyParams(), 2,
                                777);
  auto b = MakePretrainTemplate("whole_series_contrastive", TinyParams(), 2,
                                777);
  ASSERT_TRUE((*a)->Fit(x).ok());
  ASSERT_TRUE((*b)->Fit(x).ok());
  EXPECT_TRUE(ops::AllClose((*a)->Transform(x), (*b)->Transform(x),
                            0.0f, 0.0f));
}

TEST(NtXentTest, PerfectAlignmentGivesLowLoss) {
  Rng rng(5);
  Tensor z = Tensor::RandNormal({8, 16}, &rng);
  Variable z1(z, true);
  Variable z2(z.Clone(), true);
  Variable aligned = NtXentLoss(z1, z2, 0.1f);
  // Misaligned pairs: shuffle the second view.
  Tensor shuffled = ops::GatherRows(z, {4, 5, 6, 7, 0, 1, 2, 3});
  Variable misaligned = NtXentLoss(Variable(z, true),
                                   Variable(shuffled, true), 0.1f);
  EXPECT_LT(aligned.item(), misaligned.item());
}

TEST(NtXentTest, GradientFlowsToBothViews) {
  Rng rng(6);
  Variable z1(Tensor::RandNormal({4, 8}, &rng), true);
  Variable z2(Tensor::RandNormal({4, 8}, &rng), true);
  NtXentLoss(z1, z2, 0.2f).Backward();
  EXPECT_TRUE(z1.has_grad());
  EXPECT_TRUE(z2.has_grad());
  EXPECT_GT(ops::Norm(z1.grad()), 0.0f);
}

TEST(LogSigmoidTest, MatchesReferenceAndIsStable) {
  Variable x(Tensor::FromVector({5}, {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f}),
             true);
  Variable y = LogSigmoid(x);
  EXPECT_FALSE(ops::HasNonFinite(y.data()));
  EXPECT_NEAR(y.data()[2], std::log(0.5f), 1e-5);
  EXPECT_NEAR(y.data()[4], 0.0f, 1e-5);
  EXPECT_NEAR(y.data()[0], -100.0f, 1e-3);
  ag::SumAll(y).Backward();
  // d logsigmoid / dx = sigmoid(-x): 1 at -inf, 0 at +inf, 0.5 at 0.
  EXPECT_NEAR(x.grad()[0], 1.0f, 1e-4);
  EXPECT_NEAR(x.grad()[2], 0.5f, 1e-5);
  EXPECT_NEAR(x.grad()[4], 0.0f, 1e-4);
}

TEST(MaskedAutoregressionTest, DecoderTrainsAlongside) {
  ParamSet p = TinyParams();
  MaskedAutoregression tmpl(p, 2, 41);
  ASSERT_TRUE(tmpl.Fit(TinyData()).ok());
  ASSERT_NE(tmpl.decoder(), nullptr);
  EXPECT_GT(tmpl.decoder()->NumParameters(), 0);
}

TEST(TransformerBackboneTemplateTest, WorksWithMaskedObjective) {
  ParamSet p = TinyParams();
  p.SetString("backbone", "transformer");
  p.SetInt("num_layers", 1);
  p.SetInt("num_heads", 2);
  p.SetInt("epochs", 2);
  MaskedAutoregression tmpl(p, 2, 43);
  Tensor x = TinyData(8, 2, 16);
  ASSERT_TRUE(tmpl.Fit(x).ok());
  Tensor z = tmpl.Transform(x);
  EXPECT_EQ(z.shape(), (Shape{8, 12}));
  EXPECT_FALSE(ops::HasNonFinite(z));
}

}  // namespace
}  // namespace units::core
