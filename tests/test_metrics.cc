#include "metrics/metrics.h"
#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"

namespace units::metrics {
namespace {

TEST(NearestRankQuantileTest, ExactRanks) {
  // 10 samples 1..10. Nearest rank: index ceil(q*n)-1, so the median is
  // element 4 (value 5), not element 5 — the old floor(q*n) indexing
  // returned 6 here.
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(NearestRankQuantile(v, 0.50), 5.0);
  EXPECT_EQ(NearestRankQuantile(v, 0.95), 10.0);
  EXPECT_EQ(NearestRankQuantile(v, 0.90), 9.0);
  EXPECT_EQ(NearestRankQuantile(v, 0.10), 1.0);
}

TEST(NearestRankQuantileTest, Edges) {
  std::vector<float> v{3.0f, 7.0f, 9.0f};
  // q=0 clamps to the first element; q=1 is exactly the last.
  EXPECT_EQ(NearestRankQuantile(v, 0.0), 3.0f);
  EXPECT_EQ(NearestRankQuantile(v, 1.0), 9.0f);
  // One-third of 3 samples is exactly rank 1.
  EXPECT_EQ(NearestRankQuantile(v, 1.0 / 3.0), 3.0f);
  EXPECT_EQ(NearestRankQuantile(v, 0.34), 7.0f);
  std::vector<int64_t> single{42};
  EXPECT_EQ(NearestRankQuantile(single, 0.5), 42);
}

TEST(NearestRankQuantileTest, HundredSamplePercentiles) {
  // The serving-stats convention: percentiles of 1..100 are exact.
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i + 1;
  EXPECT_EQ(NearestRankQuantile(v, 0.50), 50.0);
  EXPECT_EQ(NearestRankQuantile(v, 0.95), 95.0);
  EXPECT_EQ(NearestRankQuantile(v, 0.99), 99.0);
}

TEST(AccuracyTest, Basics) {
  EXPECT_EQ(Accuracy({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_EQ(Accuracy({0, 1, 2, 3}, {0, 0, 0, 3}), 0.5);
  EXPECT_EQ(Accuracy({1}, {0}), 0.0);
}

TEST(ConfusionMatrixTest, RowsAreTruth) {
  const auto cm = ConfusionMatrix({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_EQ(cm[0][0], 1);
  EXPECT_EQ(cm[0][1], 1);
  EXPECT_EQ(cm[1][0], 0);
  EXPECT_EQ(cm[1][1], 2);
}

TEST(ClassifierReportTest, PerfectPrediction) {
  const auto report = ClassifierReport({0, 1, 2, 0}, {0, 1, 2, 0}, 3);
  EXPECT_EQ(report.accuracy, 1.0);
  EXPECT_EQ(report.macro_f1, 1.0);
  EXPECT_EQ(report.macro_precision, 1.0);
}

TEST(ClassifierReportTest, KnownPrecisionRecall) {
  // Class 0: tp=1, fp=1 (one 1 predicted as 0), fn=1.
  const auto report = ClassifierReport({0, 0, 1, 1}, {0, 1, 0, 1}, 2);
  EXPECT_NEAR(report.precision[0], 0.5, 1e-9);
  EXPECT_NEAR(report.recall[0], 0.5, 1e-9);
  EXPECT_NEAR(report.f1[0], 0.5, 1e-9);
  EXPECT_NEAR(report.accuracy, 0.5, 1e-9);
}

TEST(ClassifierReportTest, AbsentPredictedClassGivesZeroPrecision) {
  const auto report = ClassifierReport({0, 1}, {0, 0}, 2);
  EXPECT_EQ(report.precision[1], 0.0);
  EXPECT_EQ(report.recall[1], 0.0);
}

TEST(AriTest, PerfectAndLabelPermuted) {
  const std::vector<int64_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(truth, truth), 1.0, 1e-9);
  // Same partition, renamed labels: still perfect.
  const std::vector<int64_t> renamed = {2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(AdjustedRandIndex(truth, renamed), 1.0, 1e-9);
}

TEST(AriTest, RandomLabelingNearZero) {
  Rng rng(1);
  std::vector<int64_t> truth(2000);
  std::vector<int64_t> pred(2000);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<int64_t>(rng.UniformInt(4));
    pred[i] = static_cast<int64_t>(rng.UniformInt(4));
  }
  EXPECT_NEAR(AdjustedRandIndex(truth, pred), 0.0, 0.03);
}

TEST(AriTest, PartialAgreementBetweenZeroAndOne) {
  const std::vector<int64_t> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int64_t> pred = {0, 0, 1, 1, 1, 1};
  const double ari = AdjustedRandIndex(truth, pred);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(NmiTest, PerfectAndPermuted) {
  const std::vector<int64_t> truth = {0, 0, 1, 1};
  EXPECT_NEAR(NormalizedMutualInfo(truth, truth), 1.0, 1e-9);
  EXPECT_NEAR(NormalizedMutualInfo(truth, {1, 1, 0, 0}), 1.0, 1e-9);
}

TEST(NmiTest, IndependentLabelingsNearZero) {
  Rng rng(2);
  std::vector<int64_t> truth(5000);
  std::vector<int64_t> pred(5000);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<int64_t>(rng.UniformInt(3));
    pred[i] = static_cast<int64_t>(rng.UniformInt(3));
  }
  EXPECT_LT(NormalizedMutualInfo(truth, pred), 0.01);
}

TEST(SilhouetteTest, SeparatedClustersScoreHigh) {
  Tensor points = Tensor::FromVector(
      {6, 1}, {0.0f, 0.1f, 0.2f, 10.0f, 10.1f, 10.2f});
  const std::vector<int64_t> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_GT(Silhouette(points, labels), 0.9);
}

TEST(SilhouetteTest, BadAssignmentScoresLow) {
  Tensor points = Tensor::FromVector(
      {6, 1}, {0.0f, 0.1f, 0.2f, 10.0f, 10.1f, 10.2f});
  const std::vector<int64_t> mixed = {0, 1, 0, 1, 0, 1};
  EXPECT_LT(Silhouette(points, mixed), 0.1);
}

TEST(RegressionMetricsTest, KnownValues) {
  Tensor truth = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor pred = Tensor::FromVector({4}, {1, 2, 5, 0});
  EXPECT_NEAR(MeanSquaredError(truth, pred), (0 + 0 + 4 + 16) / 4.0, 1e-9);
  EXPECT_NEAR(MeanAbsoluteError(truth, pred), (0 + 0 + 2 + 4) / 4.0, 1e-9);
  EXPECT_NEAR(RootMeanSquaredError(truth, pred), std::sqrt(5.0), 1e-9);
}

TEST(MaskedMetricsTest, OnlyMissingPositionsCount) {
  Tensor truth = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor pred = Tensor::FromVector({4}, {9, 2, 5, 9});
  Tensor mask = Tensor::FromVector({4}, {1, 1, 0, 0});  // 2 missing
  EXPECT_NEAR(MaskedRmse(truth, pred, mask),
              std::sqrt((4.0 + 25.0) / 2.0), 1e-6);
  EXPECT_NEAR(MaskedMae(truth, pred, mask), (2.0 + 5.0) / 2.0, 1e-6);
}

TEST(MaskedMetricsTest, NoMissingGivesZero) {
  Tensor t = Tensor::Ones({3});
  EXPECT_EQ(MaskedRmse(t, t, Tensor::Ones({3})), 0.0);
}

TEST(PointwiseF1Test, KnownCounts) {
  const std::vector<int> truth = {0, 1, 1, 0, 1};
  const std::vector<int> pred = {0, 1, 0, 1, 1};
  const auto score = PointwiseF1(truth, pred);
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(score.recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(score.f1, 2.0 / 3.0, 1e-9);
}

TEST(PointwiseF1Test, NoPositivesAnywhere) {
  const auto score = PointwiseF1({0, 0}, {0, 0});
  EXPECT_EQ(score.f1, 0.0);
}

TEST(PointAdjustTest, OneHitMarksWholeSegment) {
  const std::vector<int> truth = {0, 1, 1, 1, 0, 1, 1};
  const std::vector<int> pred = {0, 0, 1, 0, 0, 0, 0};
  const auto adjusted = PointAdjust(truth, pred);
  EXPECT_EQ(adjusted, (std::vector<int>{0, 1, 1, 1, 0, 0, 0}));
}

TEST(PointAdjustTest, MissedSegmentStaysMissed) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<int> pred = {0, 0, 1, 0};
  const auto adjusted = PointAdjust(truth, pred);
  EXPECT_EQ(adjusted, (std::vector<int>{0, 0, 1, 0}));
}

TEST(PointAdjustTest, FalsePositivesPreserved) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<int> pred = {1, 0, 1};
  EXPECT_EQ(PointAdjust(truth, pred), pred);
}

TEST(BestF1SearchTest, FindsSeparatingThreshold) {
  // Scores clearly separate: anomalies score ~1, normal ~0.
  std::vector<float> scores = {0.1f, 0.05f, 0.9f, 0.95f, 0.2f, 0.85f};
  std::vector<int> truth = {0, 0, 1, 1, 0, 1};
  const auto best = BestF1Search(scores, truth, /*point_adjust=*/false);
  EXPECT_NEAR(best.f1, 1.0, 1e-9);
  EXPECT_GT(best.threshold, 0.2f);
  EXPECT_LT(best.threshold, 0.85f);
}

TEST(BestF1SearchTest, PointAdjustNeverLowersScore) {
  Rng rng(3);
  std::vector<float> scores(200);
  std::vector<int> truth(200, 0);
  for (int i = 50; i < 70; ++i) {
    truth[static_cast<size_t>(i)] = 1;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<float>(rng.Uniform()) +
                (truth[i] == 1 ? 0.3f : 0.0f);
  }
  const auto raw = BestF1Search(scores, truth, false);
  const auto adjusted = BestF1Search(scores, truth, true);
  EXPECT_GE(adjusted.f1 + 1e-9, raw.f1);
}

}  // namespace
}  // namespace units::metrics
