#!/usr/bin/env bash
# End-to-end test of the serving runtime: train two tiny models with
# units_cli, then drive units_serve over its newline-delimited JSON
# protocol — preload, runtime load, predicts against both models
# (coalesced by the micro-batcher), stats, and error handling — first on
# stdin, then over the TCP transport: 16 concurrent loopback clients,
# admission-control shedding, a graceful SIGTERM drain, and streaming
# sessions (stream_open/stream_feed/stream_close with window assembly,
# session shedding, stream counters, and a mid-stream drain). Finally the
# router tier: units_router shards both models across two spawned workers,
# survives a kill -9 of the owning worker by rebalancing onto the
# survivor, and drains cleanly on SIGTERM.
# Usage: serve_workflow.sh <units_cli> <units_serve> <units_router>
set -euo pipefail

CLI="$1"
SERVE="$2"
ROUTER="$3"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Two trivially separable classes (same generator as cli_workflow.sh).
DATA="$WORK/train.csv"
awk 'BEGIN {
  for (i = 0; i < 16; ++i) {
    base = (i % 2 == 0) ? 0 : 5;
    printf "%d", i % 2;
    for (t = 0; t < 32; ++t) {
      printf ",%.2f", base + 0.1 * (t % 3);
    }
    printf "\n";
  }
}' > "$DATA"

# Two fitted models (different seeds -> different weights).
for seed in 1 2; do
  "$CLI" pretrain --data "$DATA" --format ucr --seed "$seed" \
    --templates whole_series_contrastive --out "$WORK/pre$seed.json" \
    --set epochs=1 --set hidden_channels=8 --set repr_dim=8 \
    --set num_blocks=1 > /dev/null
  "$CLI" finetune --model "$WORK/pre$seed.json" --data "$DATA" \
    --format ucr --task classification --out "$WORK/m$seed.json" \
    --set epochs=4 > /dev/null
done

# Request script: model "a" is preloaded, "b" is loaded over the protocol.
REQ="$WORK/requests.ndjson"
awk -v m2="$WORK/m2.json" 'BEGIN {
  printf "{\"op\":\"load\",\"model\":\"b\",\"path\":\"%s\"}\n", m2;
  printf "{\"op\":\"list\"}\n";
  for (r = 0; r < 6; ++r) {
    printf "{\"op\":\"predict\",\"model\":\"%s\",\"id\":%d,\"values\":[",
           (r % 2 == 0 ? "a" : "b"), r;
    for (t = 0; t < 32; ++t) {
      printf "%s%.2f", (t ? "," : ""), (r % 2) * 5 + 0.1 * (t % 3);
    }
    printf "]}\n";
  }
  printf "{\"op\":\"stats\"}\n";
  printf "{\"op\":\"predict\",\"model\":\"ghost\",\"values\":[1,2,3]}\n";
  printf "{\"op\":\"bogus\"}\n";
  printf "this is not json\n";
  printf "{\"op\":\"quit\"}\n";
}' > "$REQ"

RESP="$WORK/responses.ndjson"
"$SERVE" --model "a=$WORK/m1.json" --max-delay-ms 5 \
  < "$REQ" > "$RESP" 2> "$WORK/serve.log"

# One response line per request line.
[ "$(wc -l < "$RESP")" -eq "$(wc -l < "$REQ")" ]

# Both models are listed after the runtime load.
grep -q '"op":"load"' "$RESP"
LIST_LINE="$(grep '"op":"list"' "$RESP")"
echo "$LIST_LINE" | grep -q '"name":"a"'
echo "$LIST_LINE" | grep -q '"name":"b"'

# All six predicts answered, in order, with labels and per-class scores.
[ "$(grep -c '"labels":' "$RESP")" -eq 6 ]
for id in 0 1 2 3 4 5; do
  grep -q "\"id\":$id,\"ok\":true" "$RESP"
done
# Identical inputs to the same model must answer identically, regardless
# of which batches the micro-batcher formed (determinism contract).
label_of() { grep "\"id\":$1," "$RESP" | sed 's/.*"labels":\[\([0-9-]*\)\].*/\1/'; }
[ "$(label_of 0)" = "$(label_of 2)" ]
[ "$(label_of 2)" = "$(label_of 4)" ]
[ "$(label_of 1)" = "$(label_of 3)" ]
[ "$(label_of 3)" = "$(label_of 5)" ]

# Stats cover the preloaded model that served before the stats barrier.
grep '"op":"stats"' "$RESP" | grep -q '"requests":'

# Errors are reported per line without killing the server.
[ "$(grep -c '"ok":false' "$RESP")" -eq 3 ]
grep -q '"op":"quit"' "$RESP"

# Bad invocations of the frontend itself fail fast.
if "$SERVE" --model "oops-no-equals" < /dev/null > /dev/null 2>&1; then
  echo "expected nonzero exit for a malformed --model flag" >&2
  exit 1
fi
if "$SERVE" --model "a=$WORK/absent.json" < /dev/null > /dev/null 2>&1; then
  echo "expected nonzero exit for a missing model file" >&2
  exit 1
fi

# --- Socket transport ------------------------------------------------------

# Waits for "listening on port N" in $1 and prints N.
wait_for_port() {
  local log="$1" port="" i
  for i in $(seq 1 100); do
    port="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$log" | head -n 1)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server did not report a port" >&2; return 1; }
  echo "$port"
}

VALUES_A="$(awk 'BEGIN{for(t=0;t<32;++t)printf "%s%.2f",(t?",":""),0.1*(t%3)}')"
VALUES_B="$(awk 'BEGIN{for(t=0;t<32;++t)printf "%s%.2f",(t?",":""),5+0.1*(t%3)}')"

# Phase 1: 16 concurrent clients, interleaved predicts against both
# models, zero dropped responses.
"$SERVE" --model "a=$WORK/m1.json" --model "b=$WORK/m2.json" \
  --port 0 --max-delay-ms 2 > /dev/null 2> "$WORK/socket.log" &
SOCKET_PID=$!
PORT="$(wait_for_port "$WORK/socket.log")"

run_client() {
  local id="$1" out="$WORK/client_$1.out" r m vals
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  for r in 0 1 2 3; do
    if [ $(( (id + r) % 2 )) -eq 0 ]; then m=a; vals="$VALUES_A";
    else m=b; vals="$VALUES_B"; fi
    printf '{"op":"predict","model":"%s","id":%d,"values":[%s]}\n' \
      "$m" $((id * 100 + r)) "$vals" >&3
  done
  printf '{"op":"quit"}\n' >&3
  cat <&3 > "$out"
  exec 3<&- 3>&-
}

CLIENT_PIDS=""
for c in $(seq 0 15); do
  run_client "$c" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
# shellcheck disable=SC2086  # word splitting over the pid list is intended
wait $CLIENT_PIDS
for c in $(seq 0 15); do
  OUT="$WORK/client_$c.out"
  # 4 predicts + the quit ack, all ok, every id answered, none dropped.
  [ "$(wc -l < "$OUT")" -eq 5 ]
  [ "$(grep -c '"ok":true' "$OUT")" -eq 5 ]
  for r in 0 1 2 3; do
    grep -q "\"id\":$((c * 100 + r))," "$OUT"
  done
done

# A clean SIGTERM drain of the (now idle) phase-1 server exits 0.
kill -TERM "$SOCKET_PID"
wait "$SOCKET_PID"

# Phase 2: admission control. Capacity 2 with the batcher parked means
# exactly 2 requests are admitted (and later time out) while the other 4
# are shed with the structured "overloaded" reply.
"$SERVE" --model "a=$WORK/m1.json" --port 0 --max-queue 2 \
  --max-batch 64 --max-delay-ms 10000 --request-timeout-ms 300 \
  > /dev/null 2> "$WORK/shed.log" &
SHED_PID=$!
PORT="$(wait_for_port "$WORK/shed.log")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
for r in 0 1 2 3 4 5; do
  printf '{"op":"predict","model":"a","id":%d,"values":[%s]}\n' \
    "$r" "$VALUES_A" >&3
done
printf '{"op":"quit"}\n' >&3
cat <&3 > "$WORK/shed.out"
exec 3<&- 3>&-
[ "$(grep -c '"error":"overloaded"' "$WORK/shed.out")" -eq 4 ]
[ "$(grep -c 'timed out' "$WORK/shed.out")" -eq 2 ]
kill -TERM "$SHED_PID"
wait "$SHED_PID"

# Phase 3: SIGTERM with responses still pending — the drain must answer
# everything admitted before exiting 0.
"$SERVE" --model "a=$WORK/m1.json" --port 0 --max-batch 64 \
  --max-delay-ms 5000 > /dev/null 2> "$WORK/drain.log" &
DRAIN_PID=$!
PORT="$(wait_for_port "$WORK/drain.log")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
for r in 0 1 2; do
  printf '{"op":"predict","model":"a","id":%d,"values":[%s]}\n' \
    "$r" "$VALUES_A" >&3
done
sleep 0.3  # let the event loop admit the burst
kill -TERM "$DRAIN_PID"
cat <&3 > "$WORK/drain.out"  # drain flushes, then EOF
exec 3<&- 3>&-
wait "$DRAIN_PID"
[ "$(grep -c '"ok":true' "$WORK/drain.out")" -eq 3 ]

# Phase 4: streaming sessions. One connection opens two streams (the
# configured maximum), feeds a partial chunk then a window-completing
# chunk, and a third open is shed with the structured "overloaded"
# reply; stream counters surface through the stats op.
"$SERVE" --model "a=$WORK/m1.json" --model "b=$WORK/m2.json" \
  --port 0 --max-streams 2 --max-delay-ms 2 \
  > /dev/null 2> "$WORK/stream.log" &
STREAM_PID=$!
PORT="$(wait_for_port "$WORK/stream.log")"
HALF_A="$(awk 'BEGIN{for(t=0;t<16;++t)printf "%s%.2f",(t?",":""),0.1*(t%3)}')"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"stream_open","model":"a","window":32,"stride":32}\n' >&3
printf '{"op":"stream_feed","stream":0,"values":[%s]}\n' "$HALF_A" >&3
printf '{"op":"stream_feed","stream":0,"values":[%s]}\n' "$VALUES_A" >&3
printf '{"op":"stream_open","model":"b","window":32}\n' >&3
printf '{"op":"stream_open","model":"a","window":32}\n' >&3
printf '{"op":"stream_close","stream":0}\n' >&3
printf '{"op":"stats"}\n' >&3
printf '{"op":"quit"}\n' >&3
cat <&3 > "$WORK/stream.out"
exec 3<&- 3>&-
# The 16-point feed completes no window; the next 32 points complete
# window 0 and leave 16 buffered.
grep -q '"op":"stream_open".*"stream":0' "$WORK/stream.out"
grep -q '"op":"stream_feed".*"windows":\[\]' "$WORK/stream.out"
grep -q '"windows":\[{"index":0' "$WORK/stream.out"
grep '"windows":\[{"index":0' "$WORK/stream.out" | grep -q '"labels":'
# Second session fits; the third is shed by --max-streams 2.
grep -q '"op":"stream_open".*"stream":1' "$WORK/stream.out"
grep -q '"error":"overloaded"' "$WORK/stream.out"
# Close reports the per-session totals; stats reports server-wide ones.
CLOSE_LINE="$(grep '"op":"stream_close"' "$WORK/stream.out")"
echo "$CLOSE_LINE" | grep -q '"windows":1'
echo "$CLOSE_LINE" | grep -q '"points":48'
STATS_LINE="$(grep '"op":"stats"' "$WORK/stream.out")"
echo "$STATS_LINE" | grep -q '"streams":'
echo "$STATS_LINE" | grep -q '"opened":2'
echo "$STATS_LINE" | grep -q '"shed":1'

# SIGTERM with a stream still open and a feed in flight — the drain
# must answer the pending window before exiting 0.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"stream_open","model":"a","window":32,"stride":32}\n' >&3
printf '{"op":"stream_feed","stream":0,"values":[%s]}\n' "$VALUES_A" >&3
sleep 0.3  # let the event loop admit the feed
kill -TERM "$STREAM_PID"
cat <&3 > "$WORK/stream_drain.out"  # drain flushes, then EOF
exec 3<&- 3>&-
wait "$STREAM_PID"
grep -q '"windows":\[{"index":0' "$WORK/stream_drain.out"

# --- Router tier -----------------------------------------------------------

# Phase 5: units_router shards the same NDJSON protocol across two
# spawned units_serve workers. Load both models through the router,
# predict against both, kill -9 the worker that owns model "a", and
# verify the router rebalances it onto a live worker (predicts succeed
# again, served by a different pid). SIGTERM then drains the whole tier.

# The router re-prints worker stderr as "[shard N] ...", so match only
# its own column-0 announcement line.
wait_for_router_port() {
  local log="$1" port="" i
  for i in $(seq 1 100); do
    port="$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "router did not report a port" >&2; return 1; }
  echo "$port"
}

# One NDJSON request over a fresh connection; prints the response line.
router_rpc() {
  local req="$1" line
  exec 4<>"/dev/tcp/127.0.0.1/$PORT"
  printf '%s\n' "$req" >&4
  IFS= read -r line <&4
  exec 4<&- 4>&-
  printf '%s\n' "$line"
}

# Pid of the shard whose loaded-models list contains $2, from a stats
# line $1. Within a shard entry "pid" precedes "models" and no '{'
# intervenes, so splitting on '{' keeps them in one segment.
owner_pid_of() {
  printf '%s\n' "$1" | tr '{' '\n' \
    | grep "\"models\":\[[^]]*\"$2\"" \
    | sed -n 's/.*"pid":\([0-9]*\).*/\1/p' | head -n 1
}

"$ROUTER" --port 0 --shards 2 --worker-bin "$SERVE" \
  --health-interval-s 0.2 \
  --worker-arg --max-delay-ms --worker-arg 2 \
  > /dev/null 2> "$WORK/router.log" &
ROUTER_PID=$!
PORT="$(wait_for_router_port "$WORK/router.log")"

# Both workers must be on the ring before placement is exercised.
for i in $(seq 1 100); do
  STATS="$(router_rpc '{"op":"stats"}')"
  printf '%s' "$STATS" | grep -q '"healthy_shards":2' && break
  sleep 0.1
done
printf '%s' "$STATS" | grep -q '"healthy_shards":2'

router_rpc "{\"op\":\"load\",\"model\":\"a\",\"path\":\"$WORK/m1.json\"}" \
  | grep -q '"ok":true'
router_rpc "{\"op\":\"load\",\"model\":\"b\",\"path\":\"$WORK/m2.json\"}" \
  | grep -q '"ok":true'

# Predicts for both models route through the tier and answer ok.
for r in 0 1 2 3; do
  router_rpc "{\"op\":\"predict\",\"model\":\"a\",\"id\":$r,\"values\":[$VALUES_A]}" \
    | grep -q "\"id\":$r,\"ok\":true"
  router_rpc "{\"op\":\"predict\",\"model\":\"b\",\"id\":$((r + 10)),\"values\":[$VALUES_B]}" \
    | grep -q "\"id\":$((r + 10)),\"ok\":true"
done

# Kill the worker owning "a" outright; the router must notice the death,
# respawn the shard, and converge "a" back onto a healthy worker.
STATS="$(router_rpc '{"op":"stats"}')"
OWNER_PID="$(owner_pid_of "$STATS" a)"
[ -n "$OWNER_PID" ]
kill -9 "$OWNER_PID"

for i in $(seq 1 150); do
  STATS="$(router_rpc '{"op":"stats"}')"
  NEW_PID="$(owner_pid_of "$STATS" a)"
  if [ -n "$NEW_PID" ] && [ "$NEW_PID" != "$OWNER_PID" ]; then
    break
  fi
  sleep 0.1
done
[ -n "$NEW_PID" ] && [ "$NEW_PID" != "$OWNER_PID" ]
printf '%s' "$STATS" | grep -q '"worker_deaths":[1-9]'

# Both models keep answering after the rebalance.
router_rpc "{\"op\":\"predict\",\"model\":\"a\",\"id\":50,\"values\":[$VALUES_A]}" \
  | grep -q '"id":50,"ok":true'
router_rpc "{\"op\":\"predict\",\"model\":\"b\",\"id\":51,\"values\":[$VALUES_B]}" \
  | grep -q '"id":51,"ok":true'

# Graceful drain: SIGTERM answers in-flight work, stops the workers, and
# exits 0.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"

echo "serve workflow OK"
