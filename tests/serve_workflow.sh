#!/usr/bin/env bash
# End-to-end test of the serving runtime: train two tiny models with
# units_cli, then drive units_serve over its newline-delimited JSON
# protocol — preload, runtime load, predicts against both models
# (coalesced by the micro-batcher), stats, and error handling.
# Usage: serve_workflow.sh <path-to-units_cli> <path-to-units_serve>
set -euo pipefail

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Two trivially separable classes (same generator as cli_workflow.sh).
DATA="$WORK/train.csv"
awk 'BEGIN {
  for (i = 0; i < 16; ++i) {
    base = (i % 2 == 0) ? 0 : 5;
    printf "%d", i % 2;
    for (t = 0; t < 32; ++t) {
      printf ",%.2f", base + 0.1 * (t % 3);
    }
    printf "\n";
  }
}' > "$DATA"

# Two fitted models (different seeds -> different weights).
for seed in 1 2; do
  "$CLI" pretrain --data "$DATA" --format ucr --seed "$seed" \
    --templates whole_series_contrastive --out "$WORK/pre$seed.json" \
    --set epochs=1 --set hidden_channels=8 --set repr_dim=8 \
    --set num_blocks=1 > /dev/null
  "$CLI" finetune --model "$WORK/pre$seed.json" --data "$DATA" \
    --format ucr --task classification --out "$WORK/m$seed.json" \
    --set epochs=4 > /dev/null
done

# Request script: model "a" is preloaded, "b" is loaded over the protocol.
REQ="$WORK/requests.ndjson"
awk -v m2="$WORK/m2.json" 'BEGIN {
  printf "{\"op\":\"load\",\"model\":\"b\",\"path\":\"%s\"}\n", m2;
  printf "{\"op\":\"list\"}\n";
  for (r = 0; r < 6; ++r) {
    printf "{\"op\":\"predict\",\"model\":\"%s\",\"id\":%d,\"values\":[",
           (r % 2 == 0 ? "a" : "b"), r;
    for (t = 0; t < 32; ++t) {
      printf "%s%.2f", (t ? "," : ""), (r % 2) * 5 + 0.1 * (t % 3);
    }
    printf "]}\n";
  }
  printf "{\"op\":\"stats\"}\n";
  printf "{\"op\":\"predict\",\"model\":\"ghost\",\"values\":[1,2,3]}\n";
  printf "{\"op\":\"bogus\"}\n";
  printf "this is not json\n";
  printf "{\"op\":\"quit\"}\n";
}' > "$REQ"

RESP="$WORK/responses.ndjson"
"$SERVE" --model "a=$WORK/m1.json" --max-delay-ms 5 \
  < "$REQ" > "$RESP" 2> "$WORK/serve.log"

# One response line per request line.
[ "$(wc -l < "$RESP")" -eq "$(wc -l < "$REQ")" ]

# Both models are listed after the runtime load.
grep -q '"op":"load"' "$RESP"
LIST_LINE="$(grep '"op":"list"' "$RESP")"
echo "$LIST_LINE" | grep -q '"name":"a"'
echo "$LIST_LINE" | grep -q '"name":"b"'

# All six predicts answered, in order, with labels and per-class scores.
[ "$(grep -c '"labels":' "$RESP")" -eq 6 ]
for id in 0 1 2 3 4 5; do
  grep -q "\"id\":$id,\"ok\":true" "$RESP"
done
# Identical inputs to the same model must answer identically, regardless
# of which batches the micro-batcher formed (determinism contract).
label_of() { grep "\"id\":$1," "$RESP" | sed 's/.*"labels":\[\([0-9-]*\)\].*/\1/'; }
[ "$(label_of 0)" = "$(label_of 2)" ]
[ "$(label_of 2)" = "$(label_of 4)" ]
[ "$(label_of 1)" = "$(label_of 3)" ]
[ "$(label_of 3)" = "$(label_of 5)" ]

# Stats cover the preloaded model that served before the stats barrier.
grep '"op":"stats"' "$RESP" | grep -q '"requests":'

# Errors are reported per line without killing the server.
[ "$(grep -c '"ok":false' "$RESP")" -eq 3 ]
grep -q '"op":"quit"' "$RESP"

# Bad invocations of the frontend itself fail fast.
if "$SERVE" --model "oops-no-equals" < /dev/null > /dev/null 2>&1; then
  echo "expected nonzero exit for a malformed --model flag" >&2
  exit 1
fi
if "$SERVE" --model "a=$WORK/absent.json" < /dev/null > /dev/null 2>&1; then
  echo "expected nonzero exit for a missing model file" >&2
  exit 1
fi

echo "serve workflow OK"
