// Int8 per-channel quantized serving (DESIGN.md §17): differential tests of
// the quantized substrate against the fp32 pipeline it approximates. The
// layering mirrors the guarantees: quantize->dequantize round-trip error is
// bounded per channel, UNITS_GEMM_INT8=off reproduces the fp32 forward
// bitwise, planned and dynamic quantized execution are bitwise identical,
// and task metrics across all five synthetic suites stay within tight
// parity gates of their fp32 values.

#include "tensor/quant.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "base/parallel.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "tensor/gemm_int8.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;
using ag::Variable;
using core::UnitsPipeline;

/// Scoped UNITS_GEMM_INT8 override; restores the prior value on destruction.
class Int8EnvGuard {
 public:
  explicit Int8EnvGuard(const char* value) {
    const char* prev = std::getenv("UNITS_GEMM_INT8");
    if (prev != nullptr) {
      saved_ = prev;
      had_ = true;
    }
    Apply(value);
  }
  ~Int8EnvGuard() { Apply(had_ ? saved_.c_str() : nullptr); }

 private:
  static void Apply(const char* value) {
    if (value != nullptr) {
      setenv("UNITS_GEMM_INT8", value, 1);
    } else {
      unsetenv("UNITS_GEMM_INT8");
    }
  }
  std::string saved_;
  bool had_ = false;
};

/// Scoped UNITS_PLAN override (same contract as the guard in test_plan.cc).
class PlanModeGuard {
 public:
  explicit PlanModeGuard(const char* mode) {
    const char* prev = std::getenv("UNITS_PLAN");
    if (prev != nullptr) {
      saved_ = prev;
    }
    Apply(mode);
  }
  ~PlanModeGuard() { Apply(saved_.empty() ? nullptr : saved_.c_str()); }

 private:
  static void Apply(const char* mode) {
    if (mode != nullptr) {
      setenv("UNITS_PLAN", mode, 1);
    } else {
      unsetenv("UNITS_PLAN");
    }
  }
  std::string saved_;
};

Tensor RandomTensor(const Shape& shape, std::mt19937* gen, float scale = 1.0f) {
  std::normal_distribution<float> dist(0.0f, scale);
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = dist(*gen);
  }
  return t;
}

void ExpectBitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  if (a.numel() == 0) {
    return;
  }
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)))
      << what << ": outputs are not bitwise identical";
}

// --- weight round-trip bounds ----------------------------------------------

TEST(QuantizeRoundTripTest, PerChannelErrorIsHalfAScaleStep) {
  std::mt19937 gen(21);
  const int64_t in = 37, out = 19;
  // Give every output channel its own magnitude so per-channel scales
  // actually differ (a per-tensor scale would blow the bound below).
  Tensor w({in, out});
  for (int64_t j = 0; j < out; ++j) {
    std::normal_distribution<float> dist(0.0f, 0.01f * float(1 << (j % 8)));
    for (int64_t i = 0; i < in; ++i) {
      w.data()[i * out + j] = dist(gen);
    }
  }
  const quant::QuantizedLinearWeights q =
      quant::QuantizeLinearWeight(w, nullptr);
  ASSERT_EQ(q.in_features, in);
  ASSERT_EQ(q.out_features, out);
  const Tensor back = quant::DequantizeLinearWeight(q);
  for (int64_t j = 0; j < out; ++j) {
    const float scale = q.col_scale[j];
    float absmax = 0.0f;
    for (int64_t i = 0; i < in; ++i) {
      absmax = std::max(absmax, std::abs(w.data()[i * out + j]));
      const float err = std::abs(back.data()[i * out + j] -
                                 w.data()[i * out + j]);
      // Round-to-nearest on value/scale: at most half a quantization step.
      ASSERT_LE(err, 0.5f * scale + 1e-7f) << "channel " << j << " row " << i;
    }
    EXPECT_NEAR(scale, absmax / 127.0f, 1e-6f * std::max(absmax, 1.0f));
  }
}

TEST(QuantizeRoundTripTest, ZeroChannelAndExtremesAreExact) {
  Tensor w({3, 3});
  // col 0: all zero. col 1: exactly representable extremes. col 2: mixed.
  const float vals[9] = {0.0f, -2.54f, 1.0f,   //
                         0.0f, 2.54f,  -1.0f,  //
                         0.0f, 0.0f,   0.5f};
  std::copy(vals, vals + 9, w.data());
  const quant::QuantizedLinearWeights q =
      quant::QuantizeLinearWeight(w, nullptr);
  const Tensor back = quant::DequantizeLinearWeight(q);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.data()[i * 3 + 0], 0.0f);  // zero channel stays zero
    // scale = 2.54/127 = 0.02: every col-1 value sits exactly on the grid.
    EXPECT_FLOAT_EQ(back.data()[i * 3 + 1], vals[i * 3 + 1]);
  }
}

TEST(QuantizeRoundTripTest, RequantizationIsDeterministic) {
  std::mt19937 gen(33);
  const Tensor w = RandomTensor({64, 24}, &gen);
  const Tensor b = RandomTensor({24}, &gen);
  const quant::QuantizedLinearWeights q1 = quant::QuantizeLinearWeight(w, &b);
  const quant::QuantizedLinearWeights q2 = quant::QuantizeLinearWeight(w, &b);
  // Bitwise-stable quantization is what makes save -> load -> Predict
  // reproducible across restarts (LoadJson requantizes the fp32 weights).
  ASSERT_EQ(q1.qweight, q2.qweight);
  ASSERT_EQ(q1.col_scale, q2.col_scale);
  ASSERT_EQ(q1.bias, q2.bias);
  ASSERT_EQ(q1.packed.data, q2.packed.data);
  ASSERT_EQ(q1.packed.colsum, q2.packed.colsum);
}

// --- activation quantization -----------------------------------------------

TEST(QuantizeActivationTest, NonZeroStraddlingRowsReconstruct) {
  // Regression: rows whose range does not include zero (all-positive raw
  // features, sigmoid outputs, all-negative rows) used to clamp the zero
  // point into [0, kActQMax], saturating every code so the row dequantized
  // to a single value. The range is now extended to include zero first.
  const int64_t cols = 16;
  std::mt19937 gen(9);
  std::uniform_real_distribution<float> pos(0.6f, 0.9f);
  std::vector<float> x(static_cast<size_t>(3 * cols));
  for (int64_t c = 0; c < cols; ++c) {
    x[static_cast<size_t>(0 * cols + c)] = pos(gen);           // all positive
    x[static_cast<size_t>(1 * cols + c)] = -pos(gen);          // all negative
    x[static_cast<size_t>(2 * cols + c)] = pos(gen) - 0.75f;   // straddles 0
  }
  std::vector<uint8_t> q(static_cast<size_t>(3 * cols));
  std::vector<float> scale(3);
  std::vector<int32_t> zero(3);
  quant::QuantizeActivationRows(x.data(), 3, cols, q.data(), scale.data(),
                                zero.data());
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_GE(zero[i], 0) << "row " << i;
    ASSERT_LE(zero[i], gemm::kActQMax) << "row " << i;
    for (int64_t c = 0; c < cols; ++c) {
      const float back =
          scale[i] * (static_cast<float>(q[static_cast<size_t>(i * cols + c)]) -
                      static_cast<float>(zero[i]));
      // Round-to-nearest: at most half a quantization step per element.
      EXPECT_NEAR(back, x[static_cast<size_t>(i * cols + c)],
                  0.5f * scale[i] + 1e-5f)
          << "row " << i << " col " << c;
    }
  }
}

// --- nn-layer behaviour ----------------------------------------------------

TEST(QuantizeModuleTest, LinearServesInt8AndFallsBackWhenOff) {
  std::mt19937 gen(5);
  Rng rng(77);
  nn::Linear linear(24, 12, &rng);
  const Tensor x = RandomTensor({8, 24}, &gen);
  linear.SetTraining(false);

  const Tensor fp32 = linear.Forward(Variable(x)).data();
  EXPECT_EQ(linear.QuantizeInt8Weights(), 1);
  ASSERT_TRUE(linear.quantized());

  const Tensor int8 = linear.Forward(Variable(x)).data();
  // The quantized forward is close, but must not be the fp32 path in
  // disguise: for random weights some element differs.
  double max_err = 0.0, denom = 0.0;
  bool any_diff = false;
  for (int64_t i = 0; i < fp32.numel(); ++i) {
    max_err = std::max<double>(max_err,
                               std::abs(int8.data()[i] - fp32.data()[i]));
    denom = std::max<double>(denom, std::abs(fp32.data()[i]));
    any_diff |= int8.data()[i] != fp32.data()[i];
  }
  EXPECT_TRUE(any_diff);
  EXPECT_LE(max_err, 0.05 * std::max(denom, 1.0));

  {
    // The escape hatch routes the very same call back through fp32.
    Int8EnvGuard off("off");
    ExpectBitwise(linear.Forward(Variable(x)).data(), fp32,
                  "UNITS_GEMM_INT8=off oracle");
  }
  // Training mode ignores the attached int8 weights entirely.
  linear.SetTraining(true);
  ExpectBitwise(linear.Forward(Variable(x)).data(), fp32, "training mode");
  linear.ClearQuantizedWeights();
  EXPECT_FALSE(linear.quantized());
}

TEST(QuantizeModuleTest, LinearParityOnNonZeroStraddlingInputs) {
  // End-to-end companion to NonZeroStraddlingRowsReconstruct: the quantized
  // Linear forward must track fp32 on inputs that live entirely on one side
  // of zero, not collapse to a constant per row.
  std::mt19937 gen(13);
  Rng rng(41);
  nn::Linear linear(24, 12, &rng);
  linear.SetTraining(false);
  Tensor x = RandomTensor({8, 24}, &gen, 0.1f);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = 0.75f + std::abs(x.data()[i]);  // all values in ~[0.75, 1.1]
  }
  const Tensor fp32 = linear.Forward(Variable(x)).data();
  ASSERT_EQ(linear.QuantizeInt8Weights(), 1);
  const Tensor int8 = linear.Forward(Variable(x)).data();
  double max_err = 0.0, denom = 0.0;
  for (int64_t i = 0; i < fp32.numel(); ++i) {
    max_err = std::max<double>(max_err,
                               std::abs(int8.data()[i] - fp32.data()[i]));
    denom = std::max<double>(denom, std::abs(fp32.data()[i]));
  }
  EXPECT_LE(max_err, 0.05 * std::max(denom, 1.0));
}

TEST(QuantizeModuleTest, GruBackboneOptsOut) {
  Rng rng(3);
  nn::GruBackbone gru(2, 8, 12, &rng);
  // Recurrent error compounds over timesteps; the GRU keeps fp32 weights.
  EXPECT_EQ(gru.QuantizeInt8Weights(), 0);
}

// --- pipeline fixtures -----------------------------------------------------

UnitsPipeline::Config TinyConfig(const std::string& task,
                                 const std::string& backbone = "tcn") {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = core::ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 12);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.pretrain_params.SetString("backbone", backbone);
  if (backbone == "transformer") {
    cfg.pretrain_params.SetInt("num_heads", 2);
  }
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("batch_size", 8);
  if (task == "clustering") {
    cfg.finetune_params.SetInt("num_clusters", 2);
    cfg.finetune_params.SetInt("cluster_finetune_epochs", 1);
  }
  cfg.seed = 7;
  return cfg;
}

data::TimeSeriesDataset ClassData() {
  data::ClassificationOpts opts;
  opts.num_samples = 24;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.noise = 0.2f;
  opts.seed = 5;
  return data::MakeClassificationDataset(opts);
}

data::TimeSeriesDataset ForecastData() {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.seed = 3;
  return data::MakeForecastDataset(opts, 32, 8, 8);
}

data::AnomalyOpts AnomalyOptions() {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 600;
  opts.seed = 11;
  return opts;
}

data::TimeSeriesDataset AnomalyTrainData() {
  Tensor clean = data::MakeCleanSeries(AnomalyOptions());
  return data::TimeSeriesDataset(data::SlidingWindows(clean, 32, 16));
}

data::TimeSeriesDataset AnomalyEvalData() {
  auto anomalous = data::MakeAnomalySeries(AnomalyOptions());
  data::TimeSeriesDataset test(
      data::SlidingWindows(anomalous.series, 32, 32));
  test.set_point_labels(
      data::SlidingLabelWindows(anomalous.labels, 32, 32));
  return test;
}

std::unique_ptr<UnitsPipeline> FitServing(
    const UnitsPipeline::Config& cfg, const data::TimeSeriesDataset& train) {
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  EXPECT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->FineTune(train).ok());
  EXPECT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  return std::move(*pipeline);
}

/// Parity gate: every fp32 metric must survive quantization within a tight
/// delta. Bounded scores (accuracy, f1, nmi, ...) get an absolute gate;
/// error magnitudes (mse, mae, rmse) a relative one.
void ExpectMetricParity(const std::map<std::string, double>& fp32,
                        const std::map<std::string, double>& int8,
                        const std::string& what) {
  ASSERT_EQ(fp32.size(), int8.size()) << what;
  for (const auto& [name, v32] : fp32) {
    const auto it = int8.find(name);
    ASSERT_TRUE(it != int8.end()) << what << ": metric '" << name << "'";
    const double tol =
        (v32 >= -1.0 && v32 <= 1.0) ? 0.1 : 0.1 * std::abs(v32);
    EXPECT_NEAR(it->second, v32, tol) << what << ": metric '" << name << "'";
  }
}

/// The full differential harness for one task: fp32 vs int8 task metrics,
/// row-independence of the quantized forward across batch sizes, and
/// bitwise fp32 recovery through the UNITS_GEMM_INT8=off escape hatch.
void CheckTaskParity(const std::string& task,
                     const data::TimeSeriesDataset& train,
                     const std::string& backbone,
                     const data::TimeSeriesDataset* eval_set = nullptr) {
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  const data::TimeSeriesDataset& data = eval_set != nullptr ? *eval_set
                                                            : train;
  const std::string what = task + "/" + backbone;
  auto pipeline = FitServing(TinyConfig(task, backbone), train);
  ASSERT_NE(pipeline, nullptr);
  ASSERT_EQ(pipeline->precision(), "fp32");

  auto fp32_metrics = core::Evaluate(pipeline.get(), data);
  ASSERT_TRUE(fp32_metrics.ok()) << what << ": "
                                 << fp32_metrics.status().ToString();
  const Tensor x16 = ops::Slice(data.values(), 0, 0, 16);
  auto fp32_pred = pipeline->Predict(x16);
  ASSERT_TRUE(fp32_pred.ok()) << what;

  ASSERT_GT(pipeline->QuantizeInt8(), 0) << what;
  ASSERT_EQ(pipeline->precision(), "int8");

  auto int8_metrics = core::Evaluate(pipeline.get(), data);
  ASSERT_TRUE(int8_metrics.ok()) << what;
  ExpectMetricParity(*fp32_metrics, *int8_metrics, what);

  // Batch-size sweep: the quantized forward must stay row-independent
  // (activation quantization is per-row), the invariant the serving
  // micro-batcher splices batches under.
  auto full = pipeline->Predict(x16);
  ASSERT_TRUE(full.ok()) << what;
  const int64_t per_row_pred = full->predictions.numel() / 16;
  const int64_t per_row_score = full->scores.numel() / 16;
  for (const int64_t batch : {int64_t{1}, int64_t{4}}) {
    for (int64_t start = 0; start + batch <= 16; start += 8) {
      auto part =
          pipeline->Predict(ops::Slice(data.values(), 0, start, batch));
      ASSERT_TRUE(part.ok()) << what;
      ASSERT_EQ(0,
                std::memcmp(part->predictions.data(),
                            full->predictions.data() + start * per_row_pred,
                            static_cast<size_t>(batch * per_row_pred) *
                                sizeof(float)))
          << what << ": batch " << batch << " start " << start;
      if (per_row_score > 0 && part->scores.numel() > 0) {
        ASSERT_EQ(0,
                  std::memcmp(part->scores.data(),
                              full->scores.data() + start * per_row_score,
                              static_cast<size_t>(batch * per_row_score) *
                                  sizeof(float)))
            << what << ": batch " << batch << " start " << start;
      }
    }
  }

  // Escape hatch: with the int8 GEMM disabled, the quantized pipeline is
  // bitwise the fp32 pipeline again — including labels.
  {
    Int8EnvGuard off("off");
    auto oracle = pipeline->Predict(x16);
    ASSERT_TRUE(oracle.ok()) << what;
    ASSERT_EQ(oracle->labels, fp32_pred->labels) << what;
    ExpectBitwise(oracle->predictions, fp32_pred->predictions,
                  what + " off-oracle predictions");
    ExpectBitwise(oracle->scores, fp32_pred->scores,
                  what + " off-oracle scores");
  }
}

TEST(QuantizeParityTest, Classification) {
  CheckTaskParity("classification", ClassData(), "tcn");
}

TEST(QuantizeParityTest, ClassificationTransformerBackbone) {
  // The transformer variant routes the attention projections (q/k/v/out)
  // through the quantized Linear path.
  CheckTaskParity("classification", ClassData(), "transformer");
}

// Clustering, anomaly detection, and imputation have distance- or
// reconstruction-style heads without Linear layers, so the TCN variant
// would have nothing to quantize; the transformer backbone puts the
// attention projections on the int8 path instead.

TEST(QuantizeParityTest, Clustering) {
  CheckTaskParity("clustering", ClassData(), "transformer");
}

TEST(QuantizeParityTest, Forecasting) {
  CheckTaskParity("forecasting", ForecastData(), "tcn");
}

TEST(QuantizeParityTest, AnomalyDetection) {
  const auto eval_set = AnomalyEvalData();
  CheckTaskParity("anomaly_detection", AnomalyTrainData(), "transformer",
                  &eval_set);
}

TEST(QuantizeParityTest, Imputation) {
  CheckTaskParity("imputation", ForecastData(), "transformer");
}

// --- captured plans over the quantized forward ------------------------------

TEST(QuantizePlanTest, PlannedMatchesDynamicBitwise) {
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  auto train = ClassData();
  auto pipeline = FitServing(TinyConfig("classification"), train);
  ASSERT_NE(pipeline, nullptr);
  ASSERT_GT(pipeline->QuantizeInt8(), 0);

  const Tensor x = ops::Slice(train.values(), 0, 0, 16);
  for (const int threads : {1, 8}) {
    base::SetNumThreads(threads);
    auto planned_r = pipeline->Predict(x);
    ASSERT_TRUE(planned_r.ok());
    auto dynamic_r = [&] {
      PlanModeGuard dyn("dynamic");
      return pipeline->Predict(x);
    }();
    ASSERT_TRUE(dynamic_r.ok());
    ASSERT_EQ(planned_r->labels, dynamic_r->labels);
    ExpectBitwise(planned_r->predictions, dynamic_r->predictions,
                  "quantized planned vs dynamic @" + std::to_string(threads));
    ExpectBitwise(planned_r->scores, dynamic_r->scores,
                  "quantized planned vs dynamic scores @" +
                      std::to_string(threads));
  }
  base::SetNumThreads(1);
  const plan::PlanCacheStats stats = pipeline->GetPlanCacheStats();
  EXPECT_GE(stats.plans, 1);
  EXPECT_GT(stats.planned_chunks, 0);
}

TEST(QuantizePlanTest, QuantizeInvalidatesCapturedPlans) {
  // Regression: plans captured from the fp32 forward hold fp32 matmul
  // nodes (or const-folded fp32 outputs). Re-quantizing a resident model
  // must drop them, or planned Predicts keep serving fp32 silently.
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  auto train = ClassData();
  auto pipeline = FitServing(TinyConfig("classification"), train);
  ASSERT_NE(pipeline, nullptr);
  const Tensor x = ops::Slice(train.values(), 0, 0, 8);
  ASSERT_TRUE(pipeline->Predict(x).ok());
  ASSERT_GE(pipeline->GetPlanCacheStats().plans, 1);

  ASSERT_GT(pipeline->QuantizeInt8(), 0);
  EXPECT_EQ(pipeline->GetPlanCacheStats().plans, 0)
      << "quantize left stale fp32 plans in the cache";

  // The recaptured plan must execute the int8 path; UNITS_PLAN=verify
  // aborts the process on any planned/dynamic divergence.
  auto r = pipeline->Predict(x);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(pipeline->GetPlanCacheStats().plans, 1);
  {
    PlanModeGuard verify("verify");
    ASSERT_TRUE(pipeline->Predict(x).ok());
  }
}

TEST(QuantizePlanTest, ZeroLayerQuantizeKeepsFp32PrecisionAndPlans) {
  // Regression: a quantize that touches zero layers (clustering head has no
  // Linear, TCN backbone included) must not relabel the model int8 or drop
  // valid fp32 plans — the pipeline still serves pure fp32.
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  auto train = ClassData();
  auto pipeline = FitServing(TinyConfig("clustering", "tcn"), train);
  ASSERT_NE(pipeline, nullptr);
  const Tensor x = ops::Slice(train.values(), 0, 0, 8);
  auto fp32_r = pipeline->Predict(x);
  ASSERT_TRUE(fp32_r.ok());
  const int64_t plans_before = pipeline->GetPlanCacheStats().plans;
  ASSERT_GE(plans_before, 1);

  EXPECT_EQ(pipeline->QuantizeInt8(), 0);
  EXPECT_EQ(pipeline->precision(), "fp32");
  EXPECT_EQ(pipeline->GetPlanCacheStats().plans, plans_before)
      << "no-op quantize dropped valid fp32 plans";

  auto again = pipeline->Predict(x);
  ASSERT_TRUE(again.ok());
  ExpectBitwise(again->predictions, fp32_r->predictions,
                "no-op quantize must leave the fp32 forward untouched");
}

TEST(QuantizePlanTest, EnvFlipMidServeRecaptures) {
  // Regression for the UNITS_GEMM_INT8 escape hatch under captured plans:
  // the gate is read per forward, so plans captured while the int8 GEMM
  // was live must not be replayed after the operator exports =off (and
  // vice versa). RunEvalProgram detects the flip and recaptures.
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  auto train = ClassData();
  auto pipeline = FitServing(TinyConfig("classification"), train);
  ASSERT_NE(pipeline, nullptr);
  const Tensor x = ops::Slice(train.values(), 0, 0, 8);
  auto fp32_r = pipeline->Predict(x);
  ASSERT_TRUE(fp32_r.ok());

  ASSERT_GT(pipeline->QuantizeInt8(), 0);
  auto int8_r = pipeline->Predict(x);  // captures the int8 plan
  ASSERT_TRUE(int8_r.ok());

  {
    Int8EnvGuard off("off");
    auto oracle = pipeline->Predict(x);
    ASSERT_TRUE(oracle.ok());
    ExpectBitwise(oracle->predictions, fp32_r->predictions,
                  "off-flip must serve the fp32 oracle, not a stale plan");
  }
  // Flip back: int8 plans return, bitwise equal to the pre-flip answer.
  auto again = pipeline->Predict(x);
  ASSERT_TRUE(again.ok());
  ExpectBitwise(again->predictions, int8_r->predictions,
                "int8 answer must be stable across an off/on round trip");
}

}  // namespace
}  // namespace units
