#include "augment/augment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace units::augment {
namespace {

Tensor MakeBatch(int64_t n = 4, int64_t d = 2, int64_t t = 64,
                 uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::RandNormal({n, d, t}, &rng);
}

TEST(JitterTest, PreservesShapeAndMean) {
  Rng rng(1);
  Tensor x = MakeBatch();
  Tensor y = Jitter(x, 0.1f, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_NEAR(ops::MeanAll(y), ops::MeanAll(x), 0.05f);
  EXPECT_FALSE(ops::AllClose(y, x));
}

TEST(JitterTest, ZeroSigmaIsIdentity) {
  Rng rng(2);
  Tensor x = MakeBatch();
  EXPECT_TRUE(ops::AllClose(Jitter(x, 0.0f, &rng), x));
}

TEST(ScaleTest, ScalesWholeChannels) {
  Rng rng(3);
  Tensor x = Tensor::Ones({2, 2, 8});
  Tensor y = Scale(x, 0.5f, &rng);
  // Within a (sample, channel) row every element shares the same factor.
  for (int64_t i = 0; i < 4; ++i) {
    const float f = y[i * 8];
    for (int64_t j = 1; j < 8; ++j) {
      EXPECT_EQ(y[i * 8 + j], f);
    }
  }
}

TEST(MagnitudeWarpTest, SmoothMultiplicative) {
  Rng rng(4);
  Tensor x = Tensor::Ones({1, 1, 100});
  Tensor y = MagnitudeWarp(x, 0.2f, 4, &rng);
  // Warped constant signal stays positive and near 1 on average.
  EXPECT_GT(ops::MinAll(y), 0.0f);
  EXPECT_NEAR(ops::MeanAll(y), 1.0f, 0.3f);
  // Adjacent values change slowly (smoothness).
  for (int64_t t = 1; t < 100; ++t) {
    EXPECT_LT(std::fabs(y[t] - y[t - 1]), 0.05f);
  }
}

TEST(PermuteTest, PreservesValueMultiset) {
  Rng rng(5);
  Tensor x = MakeBatch(2, 1, 32, 7);
  Tensor y = Permute(x, 4, &rng);
  // Sorting each row must give identical values.
  for (int64_t i = 0; i < 2; ++i) {
    std::vector<float> xa(x.data() + i * 32, x.data() + (i + 1) * 32);
    std::vector<float> ya(y.data() + i * 32, y.data() + (i + 1) * 32);
    std::sort(xa.begin(), xa.end());
    std::sort(ya.begin(), ya.end());
    EXPECT_EQ(xa, ya);
  }
}

TEST(PermuteTest, ChannelsMoveTogether) {
  Rng rng(6);
  // Two identical channels must remain identical after permutation.
  Tensor x = Tensor::Zeros({1, 2, 16});
  for (int64_t t = 0; t < 16; ++t) {
    x.At({0, 0, t}) = static_cast<float>(t);
    x.At({0, 1, t}) = static_cast<float>(t);
  }
  Tensor y = Permute(x, 4, &rng);
  for (int64_t t = 0; t < 16; ++t) {
    EXPECT_EQ(y.At({0, 0, t}), y.At({0, 1, t}));
  }
}

TEST(TimeMaskTest, MasksExpectedFraction) {
  Rng rng(7);
  Tensor x = Tensor::Ones({8, 1, 256});
  Tensor y = TimeMask(x, 0.25f, 5.0f, &rng);
  const float kept = ops::MeanAll(y);
  EXPECT_NEAR(kept, 0.75f, 0.07f);
}

TEST(TimeMaskTest, MaskingIsAllChannelsAtOnce) {
  Rng rng(8);
  Tensor x = Tensor::Ones({1, 3, 64});
  Tensor y = TimeMask(x, 0.3f, 4.0f, &rng);
  for (int64_t t = 0; t < 64; ++t) {
    const float a = y.At({0, 0, t});
    EXPECT_EQ(a, y.At({0, 1, t}));
    EXPECT_EQ(a, y.At({0, 2, t}));
  }
}

TEST(TimeWarpTest, PreservesShapeAndEnergyScale) {
  Rng rng(9);
  Tensor x = MakeBatch(3, 2, 128, 10);
  Tensor y = TimeWarp(x, 0.2f, 6, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FALSE(ops::HasNonFinite(y));
  EXPECT_NEAR(ops::Norm(y), ops::Norm(x), 0.25f * ops::Norm(x));
}

TEST(TimeWarpTest, ZeroSigmaIsNearIdentity) {
  Rng rng(10);
  Tensor x = MakeBatch(1, 1, 64, 11);
  Tensor y = TimeWarp(x, 0.0f, 6, &rng);
  EXPECT_TRUE(ops::AllClose(y, x, 1e-3f, 1e-3f));
}

TEST(TimeWarpTest, MonotoneResamplingKeepsRange) {
  Rng rng(11);
  // Warping a monotone ramp yields a monotone result within range.
  Tensor x = Tensor::Zeros({1, 1, 50});
  for (int64_t t = 0; t < 50; ++t) {
    x.At({0, 0, t}) = static_cast<float>(t);
  }
  Tensor y = TimeWarp(x, 0.4f, 5, &rng);
  EXPECT_GE(ops::MinAll(y), 0.0f);
  EXPECT_LE(ops::MaxAll(y), 49.0f);
  for (int64_t t = 1; t < 50; ++t) {
    EXPECT_GE(y[t], y[t - 1] - 1e-4f);
  }
}

TEST(RandomCropTest, LengthAndOffsets) {
  Rng rng(12);
  Tensor x = MakeBatch(4, 1, 32, 13);
  std::vector<int64_t> offsets;
  Tensor y = RandomCrop(x, 8, &rng, &offsets);
  EXPECT_EQ(y.shape(), (Shape{4, 1, 8}));
  ASSERT_EQ(offsets.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t off = offsets[static_cast<size_t>(i)];
    EXPECT_GE(off, 0);
    EXPECT_LE(off, 24);
    for (int64_t t = 0; t < 8; ++t) {
      EXPECT_EQ(y.At({i, 0, t}), x.At({i, 0, off + t}));
    }
  }
}

TEST(RandomCropTest, FullLengthCropIsIdentity) {
  Rng rng(13);
  Tensor x = MakeBatch(2, 2, 16, 14);
  Tensor y = RandomCrop(x, 16, &rng);
  EXPECT_TRUE(ops::AllClose(y, x));
}

TEST(FrequencyPerturbTest, OutputRealAndFinite) {
  Rng rng(14);
  Tensor x = MakeBatch(2, 2, 100, 15);
  Tensor y = FrequencyPerturb(x, 0.1f, 0.1f, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FALSE(ops::HasNonFinite(y));
}

TEST(FrequencyPerturbTest, ZeroRatesNearIdentity) {
  Rng rng(15);
  Tensor x = MakeBatch(1, 1, 64, 16);
  Tensor y = FrequencyPerturb(x, 0.0f, 0.0f, &rng);
  EXPECT_TRUE(ops::AllClose(y, x, 1e-3f, 1e-3f));
}

TEST(FrequencyPerturbTest, RemovalReducesEnergy) {
  Rng rng(16);
  Tensor x = MakeBatch(2, 1, 128, 17);
  Tensor y = FrequencyPerturb(x, 0.5f, 0.0f, &rng);
  EXPECT_LT(ops::Norm(y), ops::Norm(x));
}

TEST(PipelineTest, AppliesOpsInOrder) {
  AugmentationPipeline pipeline;
  pipeline.Add("plus_one", [](const Tensor& x, Rng*) {
    return ops::AddScalar(x, 1.0f);
  });
  pipeline.Add("double", [](const Tensor& x, Rng*) {
    return ops::MulScalar(x, 2.0f);
  });
  Rng rng(17);
  Tensor x = Tensor::Zeros({1, 1, 4});
  Tensor y = pipeline.Apply(x, &rng);
  EXPECT_EQ(y[0], 2.0f);  // (0 + 1) * 2
  EXPECT_EQ(pipeline.size(), 2u);
}

TEST(PipelineTest, DefaultViewsChangeInput) {
  Rng rng(18);
  Tensor x = MakeBatch();
  auto views = AugmentationPipeline::DefaultContrastiveViews();
  Tensor v1 = views.Apply(x, &rng);
  Tensor v2 = views.Apply(x, &rng);
  EXPECT_FALSE(ops::AllClose(v1, x));
  EXPECT_FALSE(ops::AllClose(v1, v2));  // stochastic
  EXPECT_EQ(v1.shape(), x.shape());
}

}  // namespace
}  // namespace units::augment
