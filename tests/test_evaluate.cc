#include "core/evaluate.h"

#include <gtest/gtest.h>

#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"

namespace units::core {
namespace {

UnitsPipeline::Config TinyConfig(const std::string& task) {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 4);
  cfg.seed = 17;
  return cfg;
}

data::TimeSeriesDataset TinyClassData() {
  data::ClassificationOpts opts;
  opts.num_samples = 20;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 2;
  return data::MakeClassificationDataset(opts);
}

TEST(EvaluateTest, ClassificationMetrics) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  auto data = TinyClassData();
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto metrics = Evaluate(pipeline->get(), data);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(metrics->count("accuracy"));
  EXPECT_TRUE(metrics->count("macro_f1"));
  EXPECT_GE(metrics->at("accuracy"), 0.0);
  EXPECT_LE(metrics->at("accuracy"), 1.0);
}

TEST(EvaluateTest, ClassificationNeedsLabels) {
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  auto data = TinyClassData();
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  data::TimeSeriesDataset unlabeled(data.values());
  EXPECT_FALSE(Evaluate(pipeline->get(), unlabeled).ok());
}

TEST(EvaluateTest, ClusteringMetrics) {
  auto cfg = TinyConfig("clustering");
  cfg.finetune_params.SetInt("num_clusters", 2);
  cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto data = TinyClassData();
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto metrics = Evaluate(pipeline->get(), data);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(metrics->count("nmi"));
  EXPECT_TRUE(metrics->count("ari"));
}

TEST(EvaluateTest, ForecastingMetrics) {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 400;
  opts.seed = 4;
  auto data = data::MakeForecastDataset(opts, 32, 8, 8);
  auto pipeline = UnitsPipeline::Create(TinyConfig("forecasting"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto metrics = Evaluate(pipeline->get(), data);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->at("mse"), 0.0);
  EXPECT_GT(metrics->at("mae"), 0.0);
}

TEST(EvaluateTest, AnomalyMetricsUsePointLabels) {
  data::AnomalyOpts opts;
  opts.total_length = 800;
  opts.seed = 5;
  data::TimeSeriesDataset train(
      data::SlidingWindows(data::MakeCleanSeries(opts), 32, 32));
  auto pipeline = UnitsPipeline::Create(TinyConfig("anomaly_detection"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());

  auto anomalous = data::MakeAnomalySeries(opts);
  data::TimeSeriesDataset test(
      data::SlidingWindows(anomalous.series, 32, 32));
  test.set_point_labels(
      data::SlidingLabelWindows(anomalous.labels, 32, 32));
  auto metrics = Evaluate(pipeline->get(), test);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->at("best_point_adjusted_f1"), 0.0);
  EXPECT_LE(metrics->at("best_point_adjusted_f1"), 1.0);

  // Without point labels the evaluation refuses.
  data::TimeSeriesDataset no_labels(test.values());
  EXPECT_FALSE(Evaluate(pipeline->get(), no_labels).ok());
}

TEST(EvaluateTest, ImputationDrawsItsOwnMask) {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 400;
  opts.seed = 6;
  auto data = data::MakeForecastDataset(opts, 32, 1, 8);
  auto pipeline = UnitsPipeline::Create(TinyConfig("imputation"), 2);
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto metrics = Evaluate(pipeline->get(), data);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->at("masked_rmse"), 0.0);
  EXPECT_GT(metrics->at("masked_mae"), 0.0);
  EXPECT_LE(metrics->at("masked_mae"), metrics->at("masked_rmse") + 1e-9);
}

TEST(EvaluateTest, NoTaskFails) {
  auto cfg = TinyConfig("");
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  EXPECT_FALSE(Evaluate(pipeline->get(), TinyClassData()).ok());
}

}  // namespace
}  // namespace units::core
