#include "data/dataloader.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace units::data {
namespace {

TimeSeriesDataset MakeDataset(int64_t n) {
  Tensor values = Tensor::Zeros({n, 1, 4});
  for (int64_t i = 0; i < n; ++i) {
    values.At({i, 0, 0}) = static_cast<float>(i);
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
  }
  return TimeSeriesDataset(std::move(values), std::move(labels));
}

TEST(DataLoaderTest, CoversAllSamplesOncePerEpoch) {
  auto ds = MakeDataset(10);
  Rng rng(1);
  DataLoader loader(&ds, 3, /*shuffle=*/true, &rng);
  std::set<int64_t> seen;
  Batch batch;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    ++batches;
    for (int64_t idx : batch.indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(loader.NumBatches(), 4);
}

TEST(DataLoaderTest, LastBatchIsShort) {
  auto ds = MakeDataset(7);
  Rng rng(2);
  DataLoader loader(&ds, 4, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.values.dim(0), 4);
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.values.dim(0), 3);
  EXPECT_FALSE(loader.Next(&batch));
}

TEST(DataLoaderTest, UnshuffledPreservesOrder) {
  auto ds = MakeDataset(6);
  Rng rng(3);
  DataLoader loader(&ds, 2, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.indices, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(batch.values.At({0, 0, 0}), 0.0f);
  EXPECT_EQ(batch.values.At({1, 0, 0}), 1.0f);
}

TEST(DataLoaderTest, LabelsAlignWithValues) {
  auto ds = MakeDataset(8);
  Rng rng(4);
  DataLoader loader(&ds, 4, true, &rng);
  Batch batch;
  while (loader.Next(&batch)) {
    ASSERT_EQ(batch.labels.size(), batch.indices.size());
    for (size_t i = 0; i < batch.indices.size(); ++i) {
      EXPECT_EQ(batch.labels[i], batch.indices[i] % 2);
      EXPECT_EQ(batch.values.At({static_cast<int64_t>(i), 0, 0}),
                static_cast<float>(batch.indices[i]));
    }
  }
}

TEST(DataLoaderTest, ShuffleChangesOrderBetweenEpochs) {
  auto ds = MakeDataset(32);
  Rng rng(5);
  DataLoader loader(&ds, 32, true, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  const auto epoch1 = batch.indices;
  loader.Reset();
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_NE(epoch1, batch.indices);
}

TEST(DataLoaderTest, TargetsAndPointLabelsBatched) {
  auto ds = MakeDataset(6);
  ds.set_targets(Tensor::Full({6, 1, 2}, 3.0f));
  ds.set_point_labels(Tensor::Full({6, 4}, 1.0f));
  Rng rng(6);
  DataLoader loader(&ds, 4, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.targets.shape(), (Shape{4, 1, 2}));
  EXPECT_EQ(batch.point_labels.shape(), (Shape{4, 4}));
}

TEST(DataLoaderTest, EmptyTargetsWhenAbsent) {
  auto ds = MakeDataset(4);
  Rng rng(7);
  DataLoader loader(&ds, 2, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.targets.numel(), 0);
  EXPECT_EQ(batch.point_labels.numel(), 0);
}

}  // namespace
}  // namespace units::data
