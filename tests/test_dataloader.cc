#include "data/dataloader.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

namespace units::data {
namespace {

TimeSeriesDataset MakeDataset(int64_t n) {
  Tensor values = Tensor::Zeros({n, 1, 4});
  for (int64_t i = 0; i < n; ++i) {
    values.At({i, 0, 0}) = static_cast<float>(i);
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
  }
  return TimeSeriesDataset(std::move(values), std::move(labels));
}

TEST(DataLoaderTest, CoversAllSamplesOncePerEpoch) {
  auto ds = MakeDataset(10);
  Rng rng(1);
  DataLoader loader(&ds, 3, /*shuffle=*/true, &rng);
  std::set<int64_t> seen;
  Batch batch;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    ++batches;
    for (int64_t idx : batch.indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(loader.NumBatches(), 4);
}

TEST(DataLoaderTest, LastBatchIsShort) {
  auto ds = MakeDataset(7);
  Rng rng(2);
  DataLoader loader(&ds, 4, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.values.dim(0), 4);
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.values.dim(0), 3);
  EXPECT_FALSE(loader.Next(&batch));
}

TEST(DataLoaderTest, UnshuffledPreservesOrder) {
  auto ds = MakeDataset(6);
  Rng rng(3);
  DataLoader loader(&ds, 2, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.indices, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(batch.values.At({0, 0, 0}), 0.0f);
  EXPECT_EQ(batch.values.At({1, 0, 0}), 1.0f);
}

TEST(DataLoaderTest, LabelsAlignWithValues) {
  auto ds = MakeDataset(8);
  Rng rng(4);
  DataLoader loader(&ds, 4, true, &rng);
  Batch batch;
  while (loader.Next(&batch)) {
    ASSERT_EQ(batch.labels.size(), batch.indices.size());
    for (size_t i = 0; i < batch.indices.size(); ++i) {
      EXPECT_EQ(batch.labels[i], batch.indices[i] % 2);
      EXPECT_EQ(batch.values.At({static_cast<int64_t>(i), 0, 0}),
                static_cast<float>(batch.indices[i]));
    }
  }
}

TEST(DataLoaderTest, ShuffleChangesOrderBetweenEpochs) {
  auto ds = MakeDataset(32);
  Rng rng(5);
  DataLoader loader(&ds, 32, true, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  const auto epoch1 = batch.indices;
  loader.Reset();
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_NE(epoch1, batch.indices);
}

TEST(DataLoaderTest, TargetsAndPointLabelsBatched) {
  auto ds = MakeDataset(6);
  ds.set_targets(Tensor::Full({6, 1, 2}, 3.0f));
  ds.set_point_labels(Tensor::Full({6, 4}, 1.0f));
  Rng rng(6);
  DataLoader loader(&ds, 4, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.targets.shape(), (Shape{4, 1, 2}));
  EXPECT_EQ(batch.point_labels.shape(), (Shape{4, 4}));
}

TEST(DataLoaderTest, EmptyTargetsWhenAbsent) {
  auto ds = MakeDataset(4);
  Rng rng(7);
  DataLoader loader(&ds, 2, false, &rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.targets.numel(), 0);
  EXPECT_EQ(batch.point_labels.numel(), 0);
}

// ---------------------------------------------------------------------------
// Prefetching: the background worker must be transparent — bitwise-identical
// batch sequence to the synchronous loader — and killable via UNITS_PREFETCH.
// ---------------------------------------------------------------------------

void ExpectBatchesBitwiseEqual(const Batch& a, const Batch& b) {
  ASSERT_EQ(a.indices, b.indices);
  ASSERT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.values.shape(), b.values.shape());
  ASSERT_EQ(std::memcmp(a.values.data(), b.values.data(),
                        sizeof(float) * static_cast<size_t>(a.values.numel())),
            0);
  ASSERT_EQ(a.targets.shape(), b.targets.shape());
  if (a.targets.numel() > 0) {
    ASSERT_EQ(
        std::memcmp(a.targets.data(), b.targets.data(),
                    sizeof(float) * static_cast<size_t>(a.targets.numel())),
        0);
  }
  ASSERT_EQ(a.point_labels.shape(), b.point_labels.shape());
  if (a.point_labels.numel() > 0) {
    ASSERT_EQ(std::memcmp(
                  a.point_labels.data(), b.point_labels.data(),
                  sizeof(float) * static_cast<size_t>(a.point_labels.numel())),
              0);
  }
}

TEST(DataLoaderPrefetchTest, BitwiseIdenticalToSynchronousAcrossEpochs) {
  unsetenv("UNITS_PREFETCH");  // must actually exercise the worker
  auto ds = MakeDataset(23);
  ds.set_targets(Tensor::Full({23, 1, 2}, 3.0f));
  ds.set_point_labels(Tensor::Full({23, 4}, 1.0f));
  // Same seed -> same forked stream -> the shuffled epoch orders must match.
  Rng rng_sync(77);
  Rng rng_pre(77);
  DataLoader sync(&ds, 4, /*shuffle=*/true, &rng_sync, /*prefetch=*/false);
  DataLoader prefetch(&ds, 4, /*shuffle=*/true, &rng_pre, /*prefetch=*/true);
  ASSERT_FALSE(sync.prefetching());
  ASSERT_TRUE(prefetch.prefetching());
  for (int epoch = 0; epoch < 3; ++epoch) {
    Batch a;
    Batch b;
    int64_t batches = 0;
    while (sync.Next(&a)) {
      ASSERT_TRUE(prefetch.Next(&b));
      ExpectBatchesBitwiseEqual(a, b);
      ++batches;
    }
    EXPECT_FALSE(prefetch.Next(&b));
    EXPECT_EQ(batches, sync.NumBatches());
    sync.Reset();
    prefetch.Reset();
  }
}

TEST(DataLoaderPrefetchTest, ResetMidEpochCancelsStaleBatches) {
  unsetenv("UNITS_PREFETCH");
  auto ds = MakeDataset(20);
  Rng rng_sync(88);
  Rng rng_pre(88);
  DataLoader sync(&ds, 3, /*shuffle=*/true, &rng_sync, /*prefetch=*/false);
  DataLoader prefetch(&ds, 3, /*shuffle=*/true, &rng_pre, /*prefetch=*/true);
  // Consume one batch of epoch 1 from each, then restart mid-epoch. Both
  // loaders draw the same number of rng values, so epoch 2 must match
  // bitwise — and the prefetch worker's in-flight epoch-1 batch must never
  // surface.
  Batch a;
  Batch b;
  ASSERT_TRUE(sync.Next(&a));
  ASSERT_TRUE(prefetch.Next(&b));
  ExpectBatchesBitwiseEqual(a, b);
  sync.Reset();
  prefetch.Reset();
  std::set<int64_t> seen;
  while (sync.Next(&a)) {
    ASSERT_TRUE(prefetch.Next(&b));
    ExpectBatchesBitwiseEqual(a, b);
    for (int64_t idx : b.indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_FALSE(prefetch.Next(&b));
  EXPECT_EQ(seen.size(), 20u);  // full epoch, nothing stale, nothing lost
}

TEST(DataLoaderPrefetchTest, RepeatedResetStorm) {
  // Hammer Reset against the worker to shake out install/cancel races (the
  // TSan job runs this test too).
  unsetenv("UNITS_PREFETCH");
  auto ds = MakeDataset(16);
  Rng rng(99);
  DataLoader loader(&ds, 4, /*shuffle=*/true, &rng, /*prefetch=*/true);
  Batch batch;
  for (int i = 0; i < 50; ++i) {
    if (i % 3 != 0) {
      ASSERT_TRUE(loader.Next(&batch));
      ASSERT_EQ(batch.values.dim(0), 4);
    }
    loader.Reset();
  }
  std::set<int64_t> seen;
  while (loader.Next(&batch)) {
    for (int64_t idx : batch.indices) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(DataLoaderPrefetchTest, EnvKillSwitchDisablesWorker) {
  auto ds = MakeDataset(8);
  Rng rng(11);
  setenv("UNITS_PREFETCH", "0", /*overwrite=*/1);
  DataLoader off(&ds, 2, /*shuffle=*/false, &rng, /*prefetch=*/true);
  EXPECT_FALSE(off.prefetching());
  setenv("UNITS_PREFETCH", "off", /*overwrite=*/1);
  DataLoader off2(&ds, 2, /*shuffle=*/false, &rng, /*prefetch=*/true);
  EXPECT_FALSE(off2.prefetching());
  unsetenv("UNITS_PREFETCH");
  DataLoader on(&ds, 2, /*shuffle=*/false, &rng, /*prefetch=*/true);
  EXPECT_TRUE(on.prefetching());
  // The env switch only gates the worker; batches are unaffected.
  Batch batch;
  ASSERT_TRUE(off.Next(&batch));
  EXPECT_EQ(batch.indices, (std::vector<int64_t>{0, 1}));
}

TEST(DataLoaderDeathTest, NullRngFailsTheCheckNotASegfault) {
  auto ds = MakeDataset(4);
  // Regression: the constructor used to dereference rng in the member-init
  // list before any guard ran, so a null rng crashed instead of CHECKing.
  EXPECT_DEATH(DataLoader(&ds, 2, /*shuffle=*/false, /*rng=*/nullptr),
               "CHECK failed");
}

TEST(DataLoaderDeathTest, NullDatasetFailsTheCheck) {
  Rng rng(1);
  EXPECT_DEATH(DataLoader(/*dataset=*/nullptr, 2, /*shuffle=*/false, &rng),
               "CHECK failed");
}

TEST(DataLoaderDeathTest, NonPositiveBatchSizeFailsTheCheck) {
  auto ds = MakeDataset(4);
  Rng rng(1);
  EXPECT_DEATH(DataLoader(&ds, 0, /*shuffle=*/false, &rng), "CHECK failed");
  EXPECT_DEATH(DataLoader(&ds, -3, /*shuffle=*/false, &rng), "CHECK failed");
}

}  // namespace
}  // namespace units::data
