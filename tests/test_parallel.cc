#include "base/parallel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "base/rng.h"
#include "cluster/kmeans.h"
#include "tensor/tensor_ops.h"

namespace units::base {
namespace {

namespace ag = ::units::autograd;

/// Restores the global pool to the default size when a test returns.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(ThreadPool::DefaultNumThreads()); }
};

TEST(ThreadPoolTest, DefaultNumThreadsReadsEnv) {
  ASSERT_EQ(setenv("UNITS_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  ASSERT_EQ(setenv("UNITS_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  ASSERT_EQ(setenv("UNITS_NUM_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  ASSERT_EQ(unsetenv("UNITS_NUM_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, RunCoversAllIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(64);
  pool.Run(64, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int64_t sum = 0;
  pool.Run(10, [&](int64_t i) { sum += i; });  // no races: inline execution
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, PoolIsReusedAcrossCalls) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  ThreadPool* first = ThreadPool::Global();
  for (int round = 0; round < 50; ++round) {
    std::vector<int64_t> out(1000, 0);
    ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        out[static_cast<size_t>(i)] = i * 2;
      }
    });
    for (int64_t i = 0; i < 1000; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], i * 2);
    }
    // The same pool instance must serve every round.
    ASSERT_EQ(ThreadPool::Global(), first);
  }
  EXPECT_EQ(NumThreads(), 4);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [](int64_t lo, int64_t) {
                    if (lo >= 500) {
                      throw std::runtime_error("worker boom");
                    }
                  }),
      std::runtime_error);
  // The pool must stay healthy after a throwing batch.
  std::atomic<int64_t> count{0};
  ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) { count += hi - lo; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, EmptyAndNegativeRangesAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { calls++; });
  ParallelFor(5, 3, 1, [&](int64_t, int64_t) { calls++; });
  ParallelFor(-2, -2, 1, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(ParallelReduceSum(7, 7, 1, [](int64_t, int64_t) { return 1.0; }),
            0.0);
  EXPECT_EQ(ParallelReduceSum(4, -4, 1, [](int64_t, int64_t) { return 1.0; }),
            0.0);
}

TEST(ParallelForTest, ChunksAreDisjointAndOrdered) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, 10000, 64, [&](int64_t lo, int64_t hi) {
    EXPECT_LT(lo, hi);
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)]++;
    }
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Nested region: must complete inline without deadlock.
      ParallelFor(0, 8, 1,
                  [&](int64_t nlo, int64_t nhi) { total += nhi - nlo; });
    }
  });
  EXPECT_EQ(total.load(), 64 * 8);
}

TEST(ParallelReduceTest, MatchesSerialSumAtAnyThreadCount) {
  ThreadCountGuard guard;
  std::vector<double> values(100000);
  Rng rng(7);
  for (auto& v : values) {
    v = rng.Normal();
  }
  auto chunk_sum = [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      acc += values[static_cast<size_t>(i)];
    }
    return acc;
  };
  SetNumThreads(1);
  const double serial =
      ParallelReduceSum(0, static_cast<int64_t>(values.size()), 128, chunk_sum);
  SetNumThreads(8);
  const double parallel =
      ParallelReduceSum(0, static_cast<int64_t>(values.size()), 128, chunk_sum);
  // Bitwise identical: chunk boundaries and combine order are fixed.
  EXPECT_EQ(serial, parallel);
}

// --- bitwise determinism of the parallelized kernels ----------------------

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(DeterminismTest, MatMulIsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(11);
  Tensor a = Tensor::RandNormal({93, 71}, &rng);
  Tensor b = Tensor::RandNormal({71, 57}, &rng);
  SetNumThreads(1);
  Tensor serial = ops::MatMul(a, b);
  SetNumThreads(8);
  Tensor parallel = ops::MatMul(a, b);
  EXPECT_TRUE(BitwiseEqual(serial, parallel));

  Tensor ba = Tensor::RandNormal({6, 33, 17}, &rng);
  Tensor bb = Tensor::RandNormal({6, 17, 29}, &rng);
  SetNumThreads(1);
  Tensor bserial = ops::BatchedMatMul(ba, bb);
  SetNumThreads(8);
  Tensor bparallel = ops::BatchedMatMul(ba, bb);
  EXPECT_TRUE(BitwiseEqual(bserial, bparallel));
}

TEST(DeterminismTest, ElementwiseAndReductionsAreBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(13);
  Tensor a = Tensor::RandNormal({37, 41, 5}, &rng);
  Tensor b = Tensor::RandNormal({37, 41, 5}, &rng);
  SetNumThreads(1);
  Tensor add1 = ops::Add(a, b);
  Tensor gelu1 = ops::Gelu(a);
  Tensor sum1 = ops::Sum(a, 1, false);
  const float all1 = ops::SumAll(a);
  const float norm1 = ops::Norm(a);
  SetNumThreads(8);
  Tensor add8 = ops::Add(a, b);
  Tensor gelu8 = ops::Gelu(a);
  Tensor sum8 = ops::Sum(a, 1, false);
  const float all8 = ops::SumAll(a);
  const float norm8 = ops::Norm(a);
  EXPECT_TRUE(BitwiseEqual(add1, add8));
  EXPECT_TRUE(BitwiseEqual(gelu1, gelu8));
  EXPECT_TRUE(BitwiseEqual(sum1, sum8));
  EXPECT_EQ(all1, all8);
  EXPECT_EQ(norm1, norm8);
}

TEST(DeterminismTest, Conv1dForwardBackwardIsBitwiseIdentical) {
  ThreadCountGuard guard;
  Rng rng(17);
  Tensor xt = Tensor::RandNormal({4, 6, 40}, &rng);
  Tensor wt = Tensor::RandNormal({8, 6, 3}, &rng);
  Tensor bt = Tensor::RandNormal({8}, &rng);

  auto run = [&](int threads) {
    SetNumThreads(threads);
    ag::Variable x(xt, /*requires_grad=*/true);
    ag::Variable w(wt, /*requires_grad=*/true);
    ag::Variable bias(bt, /*requires_grad=*/true);
    ag::Variable out = ag::Conv1d(x, w, bias, /*dilation=*/2, /*pad_left=*/2,
                                  /*pad_right=*/2);
    ag::Variable loss = ag::SumAll(ag::Square(out));
    loss.Backward();
    return std::tuple<Tensor, Tensor, Tensor, Tensor>(
        out.data(), x.grad(), w.grad(), bias.grad());
  };
  auto [out1, gx1, gw1, gb1] = run(1);
  auto [out8, gx8, gw8, gb8] = run(8);
  EXPECT_TRUE(BitwiseEqual(out1, out8));
  EXPECT_TRUE(BitwiseEqual(gx1, gx8));
  EXPECT_TRUE(BitwiseEqual(gw1, gw8));
  EXPECT_TRUE(BitwiseEqual(gb1, gb8));
}

TEST(DeterminismTest, KMeansIsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng data_rng(19);
  Tensor points = Tensor::RandNormal({300, 9}, &data_rng);
  cluster::KMeansOptions opts;
  opts.num_clusters = 5;
  opts.num_restarts = 2;

  SetNumThreads(1);
  Rng rng1(23);
  auto r1 = cluster::KMeans(points, opts, &rng1);
  ASSERT_TRUE(r1.ok());
  SetNumThreads(8);
  Rng rng8(23);
  auto r8 = cluster::KMeans(points, opts, &rng8);
  ASSERT_TRUE(r8.ok());

  EXPECT_EQ(r1->assignments, r8->assignments);
  EXPECT_EQ(r1->inertia, r8->inertia);
  EXPECT_EQ(r1->iterations, r8->iterations);
  EXPECT_TRUE(BitwiseEqual(r1->centroids, r8->centroids));

  const auto a1 = cluster::AssignToCentroids(points, r1->centroids);
  SetNumThreads(1);
  const auto a8 = cluster::AssignToCentroids(points, r8->centroids);
  EXPECT_EQ(a1, a8);
}

}  // namespace
}  // namespace units::base
