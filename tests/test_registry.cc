#include "core/registry.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/pretrain/templates.h"
#include "core/tasks/tasks.h"

namespace units::core {
namespace {

TEST(RegistryTest, BuiltinsPresent) {
  const auto templates = RegisteredPretrainTemplates();
  for (const char* name :
       {"whole_series_contrastive", "subsequence_contrastive",
        "timestamp_contrastive", "masked_autoregression", "hybrid"}) {
    EXPECT_NE(std::find(templates.begin(), templates.end(), name),
              templates.end())
        << name;
  }
  const auto fusions = RegisteredFusions();
  EXPECT_NE(std::find(fusions.begin(), fusions.end(), "concat"),
            fusions.end());
  EXPECT_NE(std::find(fusions.begin(), fusions.end(), "projection"),
            fusions.end());
  const auto tasks = RegisteredTasks();
  for (const char* name : {"classification", "clustering", "forecasting",
                           "anomaly_detection", "imputation"}) {
    EXPECT_NE(std::find(tasks.begin(), tasks.end(), name), tasks.end())
        << name;
  }
}

TEST(RegistryTest, UnknownNamesAreNotFound) {
  ParamSet p;
  EXPECT_EQ(MakePretrainTemplate("bogus", p, 2, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MakeFusion("bogus", p).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(MakeTask("bogus", p).status().code(), StatusCode::kNotFound);
}

/// A user-supplied template: trivially wraps WholeSeriesContrastive under a
/// new name, standing in for a genuinely new SSL method (the paper's
/// extension story).
class CustomTemplate : public WholeSeriesContrastive {
 public:
  using WholeSeriesContrastive::WholeSeriesContrastive;
  std::string name() const override { return "custom_ssl"; }
};

TEST(RegistryTest, UserTemplatePlugsIntoPipeline) {
  RegisterPretrainTemplate(
      "custom_ssl", [](const ParamSet& p, int64_t c, uint64_t s) {
        return std::make_unique<CustomTemplate>(p, c, s);
      });

  UnitsPipeline::Config cfg;
  cfg.templates = {"custom_ssl"};
  cfg.task = "classification";
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->template_at(0)->name(), "custom_ssl");
}

TEST(RegistryTest, FactoryReceivesParams) {
  ParamSet p;
  p.SetInt("repr_dim", 24);
  p.SetInt("hidden_channels", 8);
  p.SetInt("num_blocks", 1);
  auto tmpl = MakePretrainTemplate("whole_series_contrastive", p, 3, 5);
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->Initialize().ok());
  EXPECT_EQ((*tmpl)->repr_dim(), 24);
}

TEST(RegistryTest, ReRegistrationOverridesFactory) {
  static int calls = 0;
  RegisterTask("probe_task", [](const ParamSet&) {
    ++calls;
    return std::make_unique<ClassificationTask>();
  });
  ParamSet p;
  ASSERT_TRUE(MakeTask("probe_task", p).ok());
  EXPECT_EQ(calls, 1);
  // Re-register under the same name: the new factory wins.
  RegisterTask("probe_task", [](const ParamSet&) {
    calls += 10;
    return std::make_unique<ClassificationTask>();
  });
  ASSERT_TRUE(MakeTask("probe_task", p).ok());
  EXPECT_EQ(calls, 11);
}

}  // namespace
}  // namespace units::core
