#ifndef UNITS_TESTS_SOCKET_TEST_UTIL_H_
#define UNITS_TESTS_SOCKET_TEST_UTIL_H_

// Loopback helpers shared by the TCP serving test binaries
// (test_socket_server, test_streaming, test_router, test_http): a
// blocking NDJSON/HTTP client with a poll-based read deadline and a
// SocketServer harness that runs the event loop on a thread.
//
// Port discipline: nothing in these helpers (or the binaries using them)
// ever pre-picks a port number. Every listener binds port 0 and the
// chosen port is read back — via getsockname for in-process servers
// (SocketServer/Router bound_port()) or via the "listening on port N"
// stderr announcement for spawned server processes. Router tests run
// many listeners at once (router + one per worker); pre-picked ports
// would race.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "serve/model_registry.h"
#include "serve/socket_server.h"

namespace units::serve {

/// One parsed HTTP response, for conformance assertions.
struct TestHttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;
};

/// Blocking loopback NDJSON client with a poll-based read deadline.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Reads one '\n'-terminated line (newline stripped). Returns false on
  /// EOF or after `timeout_s` without a complete line.
  bool ReadLine(std::string* out, double timeout_s = 30.0) {
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_s));
    for (;;) {
      const size_t pos = rbuf_.find('\n');
      if (pos != std::string::npos) {
        *out = rbuf_.substr(0, pos);
        rbuf_.erase(0, pos + 1);
        return true;
      }
      const auto remaining = deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) {
        return false;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (::poll(&pfd, 1, std::max(1, timeout_ms)) <= 0) {
        continue;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return false;  // server closed
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) {
          continue;
        }
        return false;
      }
      rbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  /// True when the server has closed the connection (EOF within
  /// `timeout_s`); fails fast if data arrives instead.
  bool WaitForEof(double timeout_s = 10.0) {
    std::string line;
    return !ReadLine(&line, timeout_s) && rbuf_.empty();
  }

  /// Reads one HTTP/1.1 response (status line, headers, Content-Length
  /// body). Returns false on EOF or timeout before a complete response.
  bool ReadHttpResponse(TestHttpResponse* out, double timeout_s = 30.0) {
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_s));
    const auto complete = [&]() -> bool {
      const size_t head_end = rbuf_.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        return false;
      }
      size_t content_length = 0;
      size_t pos = rbuf_.find("\r\n") + 2;
      std::map<std::string, std::string> headers;
      while (pos < head_end) {
        const size_t eol = rbuf_.find("\r\n", pos);
        const std::string header = rbuf_.substr(pos, eol - pos);
        pos = eol + 2;
        const size_t colon = header.find(':');
        if (colon == std::string::npos) {
          continue;
        }
        std::string name = header.substr(0, colon);
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        std::string value = header.substr(colon + 1);
        const size_t b = value.find_first_not_of(" \t");
        headers[name] = b == std::string::npos ? "" : value.substr(b);
      }
      auto it = headers.find("content-length");
      if (it != headers.end()) {
        content_length = static_cast<size_t>(std::stoul(it->second));
      }
      if (rbuf_.size() < head_end + 4 + content_length) {
        return false;
      }
      const std::string status_line = rbuf_.substr(0, rbuf_.find("\r\n"));
      const size_t sp = status_line.find(' ');
      out->status =
          sp == std::string::npos ? 0 : std::atoi(status_line.c_str() + sp);
      out->headers = std::move(headers);
      out->body = rbuf_.substr(head_end + 4, content_length);
      rbuf_.erase(0, head_end + 4 + content_length);
      return true;
    };
    for (;;) {
      if (complete()) {
        return true;
      }
      const auto remaining = deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) {
        return false;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (::poll(&pfd, 1, std::max(1, timeout_ms)) <= 0) {
        continue;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return false;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) {
          continue;
        }
        return false;
      }
      rbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string rbuf_;
};

/// A SocketServer on an ephemeral port with its event loop on a thread.
class ServerHarness {
 public:
  ServerHarness(ModelRegistry* registry, SocketServer::Options options)
      : server_(registry, std::move(options)) {}

  ~ServerHarness() { Stop(); }

  bool Start() {
    const Status status = server_.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) {
      return false;
    }
    thread_ = std::thread([this] { exit_code_ = server_.Run(); });
    return true;
  }

  int port() const { return server_.bound_port(); }
  SocketServer* server() { return &server_; }

  /// Requests a drain and returns the event loop's exit code.
  int Stop() {
    if (!thread_.joinable()) {
      return exit_code_;
    }
    server_.RequestDrain();
    thread_.join();
    return exit_code_;
  }

 private:
  SocketServer server_;
  std::thread thread_;
  int exit_code_ = -1;
};

}  // namespace units::serve

#endif  // UNITS_TESTS_SOCKET_TEST_UTIL_H_
