#ifndef UNITS_TESTS_SOCKET_TEST_UTIL_H_
#define UNITS_TESTS_SOCKET_TEST_UTIL_H_

// Loopback helpers shared by the TCP serving test binaries
// (test_socket_server, test_streaming): a blocking NDJSON client with a
// poll-based read deadline and a SocketServer harness that runs the event
// loop on a thread.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "serve/model_registry.h"
#include "serve/socket_server.h"

namespace units::serve {

/// Blocking loopback NDJSON client with a poll-based read deadline.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Reads one '\n'-terminated line (newline stripped). Returns false on
  /// EOF or after `timeout_s` without a complete line.
  bool ReadLine(std::string* out, double timeout_s = 30.0) {
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_s));
    for (;;) {
      const size_t pos = rbuf_.find('\n');
      if (pos != std::string::npos) {
        *out = rbuf_.substr(0, pos);
        rbuf_.erase(0, pos + 1);
        return true;
      }
      const auto remaining = deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) {
        return false;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (::poll(&pfd, 1, std::max(1, timeout_ms)) <= 0) {
        continue;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) {
        return false;  // server closed
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) {
          continue;
        }
        return false;
      }
      rbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  /// True when the server has closed the connection (EOF within
  /// `timeout_s`); fails fast if data arrives instead.
  bool WaitForEof(double timeout_s = 10.0) {
    std::string line;
    return !ReadLine(&line, timeout_s) && rbuf_.empty();
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string rbuf_;
};

/// A SocketServer on an ephemeral port with its event loop on a thread.
class ServerHarness {
 public:
  ServerHarness(ModelRegistry* registry, SocketServer::Options options)
      : server_(registry, std::move(options)) {}

  ~ServerHarness() { Stop(); }

  bool Start() {
    const Status status = server_.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) {
      return false;
    }
    thread_ = std::thread([this] { exit_code_ = server_.Run(); });
    return true;
  }

  int port() const { return server_.bound_port(); }
  SocketServer* server() { return &server_; }

  /// Requests a drain and returns the event loop's exit code.
  int Stop() {
    if (!thread_.joinable()) {
      return exit_code_;
    }
    server_.RequestDrain();
    thread_.join();
    return exit_code_;
  }

 private:
  SocketServer server_;
  std::thread thread_;
  int exit_code_ = -1;
};

}  // namespace units::serve

#endif  // UNITS_TESTS_SOCKET_TEST_UTIL_H_
