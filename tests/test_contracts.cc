// Contract (death) tests: programming errors must fail fast and loudly via
// UNITS_CHECK rather than corrupting state. One test per representative
// precondition class.

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, FromVectorSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromVector({2, 3}, {1.0f, 2.0f}), "CHECK failed");
}

TEST(ContractDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(ops::MatMul(a, b), "CHECK failed");
}

TEST(ContractDeathTest, SliceOutOfRangeAborts) {
  Tensor a = Tensor::Zeros({4});
  EXPECT_DEATH(ops::Slice(a, 0, 2, 5), "CHECK failed");
}

TEST(ContractDeathTest, IncompatibleBroadcastAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(ops::Add(a, b), "incompatible broadcast");
}

TEST(ContractDeathTest, BackwardOnNonScalarAborts) {
  ag::Variable v(Tensor::Zeros({3}), true);
  ag::Variable doubled = ag::MulScalar(v, 2.0f);
  EXPECT_DEATH(doubled.Backward(), "scalar");
}

TEST(ContractDeathTest, BackwardWithoutGradAborts) {
  ag::Variable v(Tensor::Zeros({}), /*requires_grad=*/false);
  EXPECT_DEATH(v.Backward(), "require grad");
}

TEST(ContractDeathTest, ReshapeNumelMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  EXPECT_DEATH(a.Reshape({4, 2}), "CHECK failed");
}

TEST(ContractDeathTest, UndefinedVariableAccessAborts) {
  ag::Variable v;
  EXPECT_DEATH(v.data(), "CHECK failed");
}

}  // namespace
}  // namespace units
