#include "core/fusion.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

namespace ag = ::units::autograd;

TEST(ConcatFusionTest, WidthIsSumOfInputs) {
  ConcatFusion fusion;
  Rng rng(1);
  EXPECT_EQ(fusion.Initialize({8, 16, 4}, &rng), 28);
  EXPECT_EQ(fusion.fused_dim(), 28);
  EXPECT_EQ(fusion.fused_dim_per_timestep(), 28);
}

TEST(ConcatFusionTest, TransformConcatenates) {
  ConcatFusion fusion;
  Rng rng(2);
  fusion.Initialize({2, 3}, &rng);
  Variable z1(Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  Variable z2(Tensor::FromVector({2, 3}, {5, 6, 7, 8, 9, 10}));
  Variable fused = fusion.Transform({z1, z2});
  EXPECT_EQ(fused.shape(), (Shape{2, 5}));
  EXPECT_EQ(fused.data().At({0, 0}), 1.0f);
  EXPECT_EQ(fused.data().At({0, 2}), 5.0f);
  EXPECT_EQ(fused.data().At({1, 4}), 10.0f);
}

TEST(ConcatFusionTest, SingleInputPassesThrough) {
  ConcatFusion fusion;
  Rng rng(3);
  fusion.Initialize({4}, &rng);
  Variable z(Tensor::Ones({3, 4}));
  Variable fused = fusion.Transform({z});
  EXPECT_TRUE(fused.data().SharesStorageWith(z.data()));
}

TEST(ConcatFusionTest, NoLearnableParameters) {
  ConcatFusion fusion;
  Rng rng(4);
  fusion.Initialize({4, 4}, &rng);
  EXPECT_TRUE(fusion.Parameters().empty());
  EXPECT_EQ(fusion.module(), nullptr);
}

TEST(ConcatFusionTest, PerTimestepConcatAlongChannels) {
  ConcatFusion fusion;
  Rng rng(5);
  fusion.Initialize({2, 3}, &rng);
  Variable z1(Tensor::Ones({2, 2, 6}));
  Variable z2(Tensor::Full({2, 3, 6}, 2.0f));
  Variable fused = fusion.TransformPerTimestep({z1, z2});
  EXPECT_EQ(fused.shape(), (Shape{2, 5, 6}));
  EXPECT_EQ(fused.data().At({0, 0, 0}), 1.0f);
  EXPECT_EQ(fused.data().At({0, 4, 5}), 2.0f);
}

TEST(ProjectionFusionTest, ProjectsToRequestedDim) {
  ProjectionFusion fusion(10);
  Rng rng(6);
  EXPECT_EQ(fusion.Initialize({8, 8}, &rng), 10);
  Variable z1(Tensor::Ones({4, 8}));
  Variable z2(Tensor::Ones({4, 8}));
  EXPECT_EQ(fusion.Transform({z1, z2}).shape(), (Shape{4, 10}));
}

TEST(ProjectionFusionTest, DefaultDimIsHalfOfTotal) {
  ProjectionFusion fusion;
  Rng rng(7);
  EXPECT_EQ(fusion.Initialize({32, 32}, &rng), 32);
}

TEST(ProjectionFusionTest, HasLearnableParameters) {
  ProjectionFusion fusion(6);
  Rng rng(8);
  fusion.Initialize({4, 4}, &rng);
  const auto params = fusion.Parameters();
  EXPECT_EQ(params.size(), 2u);  // weight + bias
  EXPECT_NE(fusion.module(), nullptr);
}

TEST(ProjectionFusionTest, GradientsFlowThroughProjection) {
  ProjectionFusion fusion(4);
  Rng rng(9);
  fusion.Initialize({3, 3}, &rng);
  Variable z1(Tensor::Ones({2, 3}), true);
  Variable z2(Tensor::Ones({2, 3}), true);
  Variable fused = fusion.Transform({z1, z2});
  ag::SumAll(fused).Backward();
  EXPECT_TRUE(z1.has_grad());
  EXPECT_TRUE(z2.has_grad());
  for (const auto& p : fusion.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(GatedFusionTest, InitialTransformIsIdentityConcat) {
  GatedFusion fusion;
  Rng rng(11);
  EXPECT_EQ(fusion.Initialize({2, 3}, &rng), 5);
  Variable z1(Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  Variable z2(Tensor::FromVector({2, 3}, {5, 6, 7, 8, 9, 10}));
  Variable fused = fusion.Transform({z1, z2});
  // Gates start at 2*sigmoid(0) = 1: plain concatenation.
  EXPECT_EQ(fused.shape(), (Shape{2, 5}));
  EXPECT_FLOAT_EQ(fused.data().At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(fused.data().At({1, 4}), 10.0f);
  const auto gates = fusion.GateValues();
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_FLOAT_EQ(gates[0], 1.0f);
}

TEST(GatedFusionTest, GatesAreLearnable) {
  GatedFusion fusion;
  Rng rng(12);
  fusion.Initialize({4, 4}, &rng);
  ASSERT_EQ(fusion.Parameters().size(), 1u);
  Variable z1(Tensor::Ones({3, 4}), true);
  Variable z2(Tensor::Ones({3, 4}), true);
  ag::SumAll(fusion.Transform({z1, z2})).Backward();
  EXPECT_TRUE(fusion.Parameters()[0].has_grad());
  EXPECT_GT(ops::Norm(fusion.Parameters()[0].grad()), 0.0f);
}

TEST(GatedFusionTest, LoweredGateSuppressesTemplate) {
  GatedFusion fusion;
  Rng rng(13);
  fusion.Initialize({2, 2}, &rng);
  // Push template 0's logit very negative.
  fusion.Parameters()[0].data()[0] = -20.0f;
  Variable z1(Tensor::Full({1, 2}, 7.0f));
  Variable z2(Tensor::Full({1, 2}, 7.0f));
  Variable fused = fusion.Transform({z1, z2});
  EXPECT_NEAR(fused.data().At({0, 0}), 0.0f, 1e-4);  // gated out
  EXPECT_NEAR(fused.data().At({0, 2}), 7.0f, 1e-4);  // untouched
}

TEST(ProjectionFusionTest, DimensionReduction) {
  // The projection can compress 2x64 inputs into 16 dims — the clustering
  // use case called out in the paper.
  ProjectionFusion fusion(16);
  Rng rng(10);
  EXPECT_EQ(fusion.Initialize({64, 64}, &rng), 16);
  Variable z1(Tensor::Ones({5, 64}));
  Variable z2(Tensor::Ones({5, 64}));
  EXPECT_EQ(fusion.Transform({z1, z2}).shape(), (Shape{5, 16}));
}

}  // namespace
}  // namespace units::core
