#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace units::data {
namespace {

TEST(ClassificationGenTest, ShapeBalanceDeterminism) {
  ClassificationOpts opts;
  opts.num_samples = 60;
  opts.num_classes = 4;
  opts.num_channels = 3;
  opts.length = 64;
  opts.seed = 5;
  auto ds = MakeClassificationDataset(opts);
  EXPECT_EQ(ds.num_samples(), 60);
  EXPECT_EQ(ds.num_channels(), 3);
  EXPECT_EQ(ds.length(), 64);
  EXPECT_EQ(ds.NumClasses(), 4);
  std::vector<int64_t> counts(4, 0);
  for (int64_t label : ds.labels()) {
    ++counts[static_cast<size_t>(label)];
  }
  for (int64_t c : counts) {
    EXPECT_EQ(c, 15);
  }
  // Same seed reproduces bit-identical data.
  auto ds2 = MakeClassificationDataset(opts);
  EXPECT_TRUE(ops::AllClose(ds.values(), ds2.values(), 0.0f, 0.0f));
}

TEST(ClassificationGenTest, DifferentSeedsDiffer) {
  ClassificationOpts opts;
  opts.num_samples = 16;
  opts.seed = 1;
  auto a = MakeClassificationDataset(opts);
  opts.seed = 2;
  auto b = MakeClassificationDataset(opts);
  EXPECT_FALSE(ops::AllClose(a.values(), b.values()));
}

TEST(ClassificationGenTest, SignalIsFiniteAndBounded) {
  ClassificationOpts opts;
  opts.num_samples = 40;
  opts.noise = 0.5f;
  opts.time_warp = 0.3f;
  auto ds = MakeClassificationDataset(opts);
  EXPECT_FALSE(ops::HasNonFinite(ds.values()));
  EXPECT_LT(ops::MaxAll(ds.values()), 30.0f);
  EXPECT_GT(ops::MinAll(ds.values()), -30.0f);
}

TEST(ClassificationGenTest, SameClassMoreSimilarThanCrossClass) {
  // Class structure sanity: mean within-class distance of noiseless
  // instances is below mean cross-class distance.
  ClassificationOpts opts;
  opts.num_samples = 40;
  opts.num_classes = 2;
  opts.noise = 0.05f;
  opts.amp_jitter = 0.05f;
  opts.phase_jitter = 0.1f;
  opts.seed = 9;
  auto ds = MakeClassificationDataset(opts);
  double within = 0.0;
  double cross = 0.0;
  int64_t nw = 0;
  int64_t nc = 0;
  for (int64_t i = 0; i < 20; ++i) {
    for (int64_t j = i + 1; j < 20; ++j) {
      Tensor a = ops::Slice(ds.values(), 0, i, 1);
      Tensor b = ops::Slice(ds.values(), 0, j, 1);
      const double dist = ops::L2Distance(a, b);
      if (ds.labels()[static_cast<size_t>(i)] ==
          ds.labels()[static_cast<size_t>(j)]) {
        within += dist;
        ++nw;
      } else {
        cross += dist;
        ++nc;
      }
    }
  }
  EXPECT_LT(within / nw, cross / nc);
}

TEST(DomainShiftTest, SharedClassStructureDifferentScale) {
  ClassificationOpts opts;
  opts.num_samples = 40;
  opts.num_classes = 3;
  opts.seed = 11;
  DomainShift shift;
  shift.amp_scale = 2.0f;
  auto [source, target] = MakeDomainShiftPair(opts, shift);
  EXPECT_EQ(source.num_samples(), target.num_samples());
  EXPECT_EQ(source.NumClasses(), target.NumClasses());
  // Target amplitude roughly amp_scale times larger.
  const float src_norm = ops::Norm(source.values());
  const float tgt_norm = ops::Norm(target.values());
  EXPECT_GT(tgt_norm, src_norm * 1.3f);
}

TEST(DomainShiftTest, ChannelRotationPermutesChannels) {
  ClassificationOpts opts;
  opts.num_samples = 8;
  opts.num_classes = 2;
  opts.num_channels = 3;
  opts.length = 16;
  opts.noise = 0.0f;
  opts.seed = 13;
  DomainShift none;
  none.amp_scale = 1.0f;
  none.freq_scale = 1.0f;
  none.drift_amp = 0.0f;
  none.noise_mult = 1.0f;
  DomainShift rotated = none;
  rotated.channel_rotation = 1;
  auto [src_a, tgt_plain] = MakeDomainShiftPair(opts, none);
  auto [src_b, tgt_rot] = MakeDomainShiftPair(opts, rotated);
  // Same instance stream: rotated target channel c equals plain channel c+1.
  for (int64_t c = 0; c < 3; ++c) {
    Tensor rot_c = ops::Slice(tgt_rot.values(), 1, c, 1);
    Tensor plain_next = ops::Slice(tgt_plain.values(), 1, (c + 1) % 3, 1);
    EXPECT_TRUE(ops::AllClose(rot_c, plain_next, 1e-5f, 1e-5f))
        << "channel " << c;
  }
  EXPECT_EQ(tgt_rot.labels(), tgt_plain.labels());
}

TEST(ForecastGenTest, SeriesShapeAndTrend) {
  ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 1000;
  opts.trend_slope = 0.01f;
  opts.seed = 3;
  Tensor s = MakeForecastSeries(opts);
  EXPECT_EQ(s.shape(), (Shape{2, 1000}));
  // Positive trend: late mean above early mean.
  const Tensor early = ops::Slice(s, 1, 0, 200);
  const Tensor late = ops::Slice(s, 1, 800, 200);
  EXPECT_GT(ops::MeanAll(late), ops::MeanAll(early) + 2.0f);
}

TEST(ForecastGenTest, SeasonalityAtConfiguredPeriod) {
  ForecastSeriesOpts opts;
  opts.num_channels = 1;
  opts.total_length = 960;
  opts.daily_period = 48.0f;
  opts.noise = 0.01f;
  opts.trend_slope = 0.0f;
  opts.seed = 4;
  Tensor s = MakeForecastSeries(opts);
  // Autocorrelation at lag = period is strongly positive.
  const float* p = s.data();
  double acf = 0.0;
  double var = 0.0;
  for (int64_t t = 0; t < 960 - 48; ++t) {
    acf += static_cast<double>(p[t]) * p[t + 48];
    var += static_cast<double>(p[t]) * p[t];
  }
  EXPECT_GT(acf / var, 0.6);
}

TEST(ForecastGenTest, DatasetWindowsHaveTargets) {
  ForecastSeriesOpts opts;
  opts.total_length = 500;
  auto ds = MakeForecastDataset(opts, 48, 12, 10);
  EXPECT_TRUE(ds.has_targets());
  EXPECT_EQ(ds.length(), 48);
  EXPECT_EQ(ds.targets().dim(2), 12);
  EXPECT_EQ(ds.values().dim(0), ds.targets().dim(0));
}

TEST(AnomalyGenTest, CleanSeriesHasNoLabels) {
  AnomalyOpts opts;
  opts.total_length = 500;
  Tensor clean = MakeCleanSeries(opts);
  EXPECT_EQ(clean.shape(), (Shape{2, 500}));
  EXPECT_FALSE(ops::HasNonFinite(clean));
}

TEST(AnomalyGenTest, InjectedAnomaliesAreLabeled) {
  AnomalyOpts opts;
  opts.total_length = 2000;
  opts.num_anomalies = 12;
  opts.seed = 6;
  auto series = MakeAnomalySeries(opts);
  EXPECT_EQ(series.labels.dim(0), 2000);
  const float labeled = ops::SumAll(series.labels);
  EXPECT_GT(labeled, 12.0f);           // every anomaly marks >= 1 step
  EXPECT_LT(labeled, 2000.0f * 0.5f);  // anomalies stay rare
}

TEST(AnomalyGenTest, SpikesProduceLargeDeviations) {
  AnomalyOpts opts;
  opts.total_length = 1500;
  opts.num_anomalies = 16;
  opts.seed = 7;
  auto anomalous = MakeAnomalySeries(opts);
  Tensor clean = MakeCleanSeries(opts);
  // Deviation energy concentrated on labeled steps.
  const float* a = anomalous.series.data();
  const float* c = clean.data();
  const float* lab = anomalous.labels.data();
  double on_dev = 0.0;
  double off_dev = 0.0;
  int64_t on = 0;
  int64_t off = 0;
  for (int64_t t = 0; t < 1500; ++t) {
    double dev = 0.0;
    for (int64_t ch = 0; ch < 2; ++ch) {
      dev += std::fabs(static_cast<double>(a[ch * 1500 + t]) -
                       c[ch * 1500 + t]);
    }
    if (lab[t] > 0.5f) {
      on_dev += dev;
      ++on;
    } else {
      off_dev += dev;
      ++off;
    }
  }
  EXPECT_GT(on_dev / on, 10.0 * (off_dev / std::max<int64_t>(off, 1) + 1e-9));
}

TEST(MissingMaskTest, RateApproximatelyMatches) {
  Rng rng(8);
  Tensor mask = MakeMissingMask({64, 2, 100}, 0.3f, 4.0f, &rng);
  const float observed = ops::MeanAll(mask);
  EXPECT_NEAR(observed, 0.7f, 0.05f);
}

TEST(MissingMaskTest, ValuesAreBinary) {
  Rng rng(9);
  Tensor mask = MakeMissingMask({4, 50}, 0.2f, 3.0f, &rng);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    EXPECT_TRUE(mask[i] == 0.0f || mask[i] == 1.0f);
  }
}

TEST(MissingMaskTest, ZeroRateAllObserved) {
  Rng rng(10);
  Tensor mask = MakeMissingMask({4, 20}, 0.0f, 3.0f, &rng);
  EXPECT_EQ(ops::SumAll(mask), 80.0f);
}

TEST(DriftingStreamTest, ShapeDeterminismAndLabels) {
  DriftingStreamOpts opts;
  opts.num_channels = 2;
  opts.total_length = 512;
  AnomalySeries a = MakeDriftingStream(opts);
  AnomalySeries b = MakeDriftingStream(opts);
  ASSERT_EQ(a.series.shape(), (Shape{2, 512}));
  ASSERT_EQ(a.labels.shape(), (Shape{512}));
  // Deterministic given the seed.
  for (int64_t i = 0; i < a.series.numel(); ++i) {
    ASSERT_EQ(a.series[i], b.series[i]);
  }
  // Labels are binary, and the injected events are actually labeled.
  int64_t labeled = 0;
  for (int64_t t = 0; t < 512; ++t) {
    ASSERT_TRUE(a.labels[t] == 0.0f || a.labels[t] == 1.0f);
    labeled += a.labels[t] == 1.0f ? 1 : 0;
  }
  EXPECT_GT(labeled, 0);
  EXPECT_LT(labeled, 512 / 4);  // anomalies are rare
}

TEST(DriftingStreamTest, MeanAndAmplitudeDrift) {
  DriftingStreamOpts opts;
  opts.num_channels = 1;
  opts.total_length = 2048;
  opts.num_anomalies = 0;
  AnomalySeries s = MakeDriftingStream(opts);
  // Level drift: the last quarter's mean sits well above the first's.
  const int64_t q = 2048 / 4;
  double first = 0.0;
  double last = 0.0;
  for (int64_t t = 0; t < q; ++t) {
    first += s.series[t];
    last += s.series[2048 - q + t];
  }
  first /= static_cast<double>(q);
  last /= static_cast<double>(q);
  EXPECT_GT(last - first, 0.5 * opts.level_drift * 2048.0 * 0.5);
  // The baseline is in the catastrophic-cancellation regime on purpose.
  EXPECT_GT(first, 1.0e5);
}

TEST(MissingMaskTest, MissingComesInBlocks) {
  Rng rng(11);
  Tensor mask = MakeMissingMask({1, 4000}, 0.3f, 8.0f, &rng);
  // Count transitions 1->0; with mean block 8 and rate .3 over 4000 steps,
  // expect ~4000*0.3/8 = 150 block starts, far fewer than the ~1200 missing
  // points (i.i.d. masking would give ~840 starts).
  const float* m = mask.data();
  int64_t starts = 0;
  for (int64_t t = 1; t < 4000; ++t) {
    if (m[t] == 0.0f && m[t - 1] == 1.0f) {
      ++starts;
    }
  }
  EXPECT_LT(starts, 400);
  EXPECT_GT(starts, 40);
}

}  // namespace
}  // namespace units::data
