#include "base/profile.h"

#include <gtest/gtest.h>

#include "json/json.h"
#include "tensor/tensor_ops.h"

namespace units::base {
namespace {

/// Leaves profiling disabled and the registry empty after each test so the
/// rest of the suite is unaffected.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OpStatsRegistry::SetEnabled(true);
    OpStatsRegistry::Global()->Reset();
  }
  void TearDown() override {
    OpStatsRegistry::SetEnabled(false);
    OpStatsRegistry::Global()->Reset();
  }

  static const OpStat* FindStat(
      const std::vector<std::pair<std::string, OpStat>>& stats,
      const std::string& name) {
    for (const auto& [n, stat] : stats) {
      if (n == name) {
        return &stat;
      }
    }
    return nullptr;
  }
};

TEST_F(ProfileTest, ScopedTimerAccumulates) {
  for (int i = 0; i < 3; ++i) {
    UNITS_PROFILE_SCOPE("test.op");
  }
  const auto stats = OpStatsRegistry::Global()->Snapshot();
  const OpStat* stat = FindStat(stats, "test.op");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->calls, 3);
  EXPECT_GE(stat->total_ns, 0);
}

TEST_F(ProfileTest, DisabledTimersRecordNothing) {
  OpStatsRegistry::SetEnabled(false);
  {
    UNITS_PROFILE_SCOPE("test.disabled");
  }
  OpStatsRegistry::SetEnabled(true);
  const auto stats = OpStatsRegistry::Global()->Snapshot();
  EXPECT_EQ(FindStat(stats, "test.disabled"), nullptr);
}

TEST_F(ProfileTest, KernelCallSitesReport) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1});
  (void)ops::MatMul(a, b);
  (void)ops::MatMul(a, b);
  (void)ops::Softmax(a, /*axis=*/1);
  const auto stats = OpStatsRegistry::Global()->Snapshot();
  const OpStat* matmul = FindStat(stats, "tensor.MatMul");
  ASSERT_NE(matmul, nullptr);
  EXPECT_EQ(matmul->calls, 2);
  const OpStat* softmax = FindStat(stats, "tensor.Softmax");
  ASSERT_NE(softmax, nullptr);
  EXPECT_EQ(softmax->calls, 1);
}

TEST_F(ProfileTest, SnapshotIsNameSorted) {
  OpStatsRegistry::Global()->Record("zzz", 1);
  OpStatsRegistry::Global()->Record("aaa", 1);
  const auto stats = OpStatsRegistry::Global()->Snapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "aaa");
  EXPECT_EQ(stats[1].first, "zzz");
}

TEST_F(ProfileTest, DumpJsonIsValid) {
  OpStatsRegistry::Global()->Record("test.dump", 1500000);  // 1.5 ms
  OpStatsRegistry::Global()->Record("test.dump", 500000);
  auto parsed = json::Parse(OpStatsRegistry::Global()->DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  ASSERT_TRUE(parsed->Contains("test.dump"));
  const json::JsonValue& entry = parsed->at("test.dump");
  EXPECT_EQ(entry.at("calls").AsInt(), 2);
  EXPECT_NEAR(entry.at("total_ms").AsNumber(), 2.0, 1e-6);
}

TEST_F(ProfileTest, ResetClears) {
  OpStatsRegistry::Global()->Record("test.reset", 1);
  OpStatsRegistry::Global()->Reset();
  EXPECT_TRUE(OpStatsRegistry::Global()->Snapshot().empty());
}

}  // namespace
}  // namespace units::base
