// End-to-end tests for the shard router tier: consistent-hash placement
// of models across spawned units_serve workers, byte-identical predict
// responses through the router versus a direct worker, worker-death
// rebalancing (retries drain to the successor shard with zero lost
// accepted requests; retries=0 fails fast with a structured
// "unavailable"), health-check eviction of a hung worker followed by
// respawn, fan-out stats/list aggregation, and the ops the router answers
// locally. Built as its own executable so the sanitizer CI jobs can run
// the full multi-process lifecycle directly.
//
// The worker binary is resolved relative to this test executable
// (build/tests/... -> build/tools/units_serve); UNITS_SERVE_BIN overrides.

#include "router/router.h"

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"
#include "router/hash_ring.h"
#include "router/worker_process.h"
#include "serve/model_registry.h"
#include "serve_test_util.h"
#include "socket_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::router {
namespace {

using serve::TestClient;

// --- Hash ring unit tests --------------------------------------------------

std::vector<std::string> RingKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    keys.push_back("model-" + std::to_string(i));
  }
  return keys;
}

TEST(HashRingTest, LookupIsDeterministicAcrossInstances) {
  HashRing a, b;
  // Different insertion orders must still agree on every placement.
  for (int node : {0, 1, 2, 3}) {
    a.AddNode(node);
  }
  for (int node : {3, 1, 0, 2}) {
    b.AddNode(node);
  }
  for (const std::string& key : RingKeys(200)) {
    const int owner = a.Lookup(key);
    ASSERT_GE(owner, 0);
    ASSERT_LE(owner, 3);
    EXPECT_EQ(owner, b.Lookup(key)) << key;
  }
}

TEST(HashRingTest, EmptyRingHasNoOwner) {
  HashRing ring;
  EXPECT_EQ(ring.Lookup("anything"), -1);
  ring.AddNode(5);
  EXPECT_EQ(ring.Lookup("anything"), 5);
  ring.RemoveNode(5);
  EXPECT_EQ(ring.Lookup("anything"), -1);
}

TEST(HashRingTest, RemovalOnlyRemapsTheRemovedNodesKeys) {
  HashRing ring;
  for (int node : {0, 1, 2, 3}) {
    ring.AddNode(node);
  }
  const auto keys = RingKeys(400);
  std::map<std::string, int> before;
  for (const std::string& key : keys) {
    before[key] = ring.Lookup(key);
  }
  ring.RemoveNode(2);
  int moved = 0;
  for (const std::string& key : keys) {
    const int owner = ring.Lookup(key);
    ASSERT_NE(owner, 2) << key;
    if (before[key] != 2) {
      // The consistent-hashing contract: surviving nodes keep their keys.
      EXPECT_EQ(owner, before[key]) << key;
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, VirtualReplicasSpreadKeysAcrossNodes) {
  HashRing ring;
  for (int node : {0, 1, 2, 3}) {
    ring.AddNode(node);
  }
  std::map<int, int> counts;
  for (const std::string& key : RingKeys(1000)) {
    counts[ring.Lookup(key)] += 1;
  }
  for (int node : {0, 1, 2, 3}) {
    // 64 virtual points per node keep the split coarse but never
    // degenerate; each node must own a real share of 1000 keys.
    EXPECT_GT(counts[node], 100) << "node " << node;
  }
}

TEST(WorkerProcessTest, FindPortAnnouncementNeedsACompleteLine) {
  EXPECT_EQ(FindPortAnnouncement(""), 0);
  EXPECT_EQ(FindPortAnnouncement("listening on port 4242"), 0);
  EXPECT_EQ(FindPortAnnouncement("listening on port 4242\n"), 4242);
  EXPECT_EQ(FindPortAnnouncement(
                "units_serve: loaded 2 models\nlistening on port 999\nmore\n"),
            999);
  EXPECT_EQ(FindPortAnnouncement("nothing relevant\n"), 0);
}

// --- End-to-end fixtures ---------------------------------------------------

/// The units_serve binary next to this test executable's sibling tools/
/// directory; UNITS_SERVE_BIN overrides (the CMake test target sets
/// nothing, so the relative layout is the normal path).
std::string WorkerBinaryPath() {
  if (const char* env = ::getenv("UNITS_SERVE_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return "";
  }
  buf[n] = '\0';
  const std::string self(buf);
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) {
    return "";
  }
  return self.substr(0, slash) + "/../tools/units_serve";
}

/// A Router on an ephemeral port with its event loop on a thread.
class RouterHarness {
 public:
  explicit RouterHarness(Router::Options options)
      : router_(std::move(options)) {}

  ~RouterHarness() { Stop(); }

  bool Start() {
    const Status status = router_.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) {
      return false;
    }
    thread_ = std::thread([this] { exit_code_ = router_.Run(); });
    return true;
  }

  int port() const { return router_.bound_port(); }

  /// Requests a drain and returns the event loop's exit code.
  int Stop() {
    if (!thread_.joinable()) {
      return exit_code_;
    }
    router_.RequestDrain();
    thread_.join();
    return exit_code_;
  }

 private:
  Router router_;
  std::thread thread_;
  int exit_code_ = -1;
};

std::string PredictLine(const std::string& model, const Tensor& row,
                        int64_t id) {
  const int64_t channels = row.dim(1);
  const int64_t length = row.dim(2);
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"op\": \"predict\", \"model\": \"" << model << "\", \"id\": " << id
     << ", \"values\": [";
  for (int64_t d = 0; d < channels; ++d) {
    os << (d == 0 ? "[" : ", [");
    for (int64_t t = 0; t < length; ++t) {
      os << (t == 0 ? "" : ", ") << row[d * length + t];
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

struct Reference {
  Tensor row;
  std::vector<int64_t> labels;
};

/// Two fitted classification models saved to disk once for the suite —
/// router tests load them into spawned workers by path.
class RouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    worker_bin_ = new std::string(WorkerBinaryPath());
    ASSERT_EQ(::access(worker_bin_->c_str(), X_OK), 0)
        << "worker binary not found at " << *worker_bin_
        << " (set UNITS_SERVE_BIN)";
    dir_ = new std::string(::testing::TempDir() + "units_router_models_" +
                           std::to_string(::getpid()));
    ::mkdir(dir_->c_str(), 0755);
    paths_ = new std::map<std::string, std::string>();
    refs_ = new std::map<std::string, Reference>();
    for (const auto& [name, seed] :
         std::vector<std::pair<std::string, uint64_t>>{{"alpha", 7},
                                                       {"beta", 21}}) {
      serve::FittedModel fitted = serve::MakeFitted("classification", seed);
      Reference ref;
      ref.row = ops::Slice(fitted.data, 0, 0, 1);
      auto result = fitted.pipeline->Predict(ref.row);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ref.labels = result->labels;
      (*refs_)[name] = std::move(ref);
      const std::string path = *dir_ + "/" + name + ".json";
      ASSERT_TRUE(fitted.pipeline->SaveJson(path).ok());
      (*paths_)[name] = path;
    }
  }

  static Router::Options Defaults(int shards = 2) {
    Router::Options options;
    options.num_shards = shards;
    options.worker_binary = *worker_bin_;
    options.health_interval_s = 0.1;
    options.respawn_backoff_s = 0.1;
    options.worker_args = {"--max-delay-ms", "1"};
    return options;
  }

  static const Reference& Ref(const std::string& model) {
    return refs_->at(model);
  }
  static const std::string& Path(const std::string& model) {
    return paths_->at(model);
  }

  /// Loads `model` through the router and checks the worker's response.
  static void LoadViaRouter(TestClient* client, const std::string& model) {
    ASSERT_TRUE(client->SendLine("{\"op\": \"load\", \"model\": \"" + model +
                                 "\", \"path\": \"" + Path(model) + "\"}"));
    std::string line;
    ASSERT_TRUE(client->ReadLine(&line, 60.0)) << "load " << model;
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->at("ok").AsBool()) << line;
    EXPECT_EQ(parsed->at("op").AsString(), "load") << line;
    EXPECT_EQ(parsed->at("model").AsString(), model) << line;
  }

  /// One aggregated stats round-trip through the router.
  static json::JsonValue StatsViaRouter(TestClient* client) {
    EXPECT_TRUE(client->SendLine("{\"op\": \"stats\"}"));
    std::string line;
    EXPECT_TRUE(client->ReadLine(&line, 60.0));
    auto parsed = json::Parse(line);
    EXPECT_TRUE(parsed.ok()) << line;
    return parsed.ok() ? *parsed : json::JsonValue::Object();
  }

  /// Polls aggregated stats until `want` shards report healthy — workers
  /// boot asynchronously inside Run(), so tests must not race the spawn.
  static void WaitForHealthyShards(TestClient* client, int want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      const json::JsonValue stats = StatsViaRouter(client);
      if (stats.is_object() && stats.Contains("router") &&
          stats.at("router").at("healthy_shards").AsInt() == want) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    FAIL() << "never reached " << want << " healthy shards";
  }

  /// Shard rollup entry owning `model`, or a null value when unplaced.
  static json::JsonValue OwnerEntry(const json::JsonValue& stats,
                                    const std::string& model) {
    if (!stats.is_object() || !stats.Contains("shards")) {
      return json::JsonValue();
    }
    const json::JsonValue& shards = stats.at("shards");
    for (size_t i = 0; i < shards.size(); ++i) {
      const json::JsonValue& entry = shards[i];
      const json::JsonValue& models = entry.at("models");
      for (size_t m = 0; m < models.size(); ++m) {
        if (models[m].AsString() == model) {
          return entry;
        }
      }
    }
    return json::JsonValue();
  }

  static void ExpectPredictOk(const std::string& line,
                              const std::string& model, int64_t id) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->Contains("ok")) << line;
    ASSERT_TRUE(parsed->at("ok").AsBool()) << line;
    EXPECT_EQ(parsed->at("id").AsInt(), id) << line;
    EXPECT_EQ(parsed->at("model").AsString(), model) << line;
    EXPECT_EQ(parsed->at("labels").ToInts(), Ref(model).labels) << line;
  }

  static std::string* worker_bin_;
  static std::string* dir_;
  static std::map<std::string, std::string>* paths_;
  static std::map<std::string, Reference>* refs_;
};

std::string* RouterTest::worker_bin_ = nullptr;
std::string* RouterTest::dir_ = nullptr;
std::map<std::string, std::string>* RouterTest::paths_ = nullptr;
std::map<std::string, Reference>* RouterTest::refs_ = nullptr;

// --- End-to-end tests ------------------------------------------------------

TEST_F(RouterTest, PlacesModelsByHashAndMatchesDirectWorkerBitwise) {
  RouterHarness harness(Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 2));
  LoadViaRouter(&client, "alpha");
  LoadViaRouter(&client, "beta");

  // Each model must live on exactly the shard the ring places it on, and
  // placement must agree with an independently constructed ring.
  HashRing ring(64);
  ring.AddNode(0);
  ring.AddNode(1);
  const json::JsonValue stats = StatsViaRouter(&client);
  for (const std::string model : {"alpha", "beta"}) {
    const json::JsonValue owner = OwnerEntry(stats, model);
    ASSERT_TRUE(owner.is_object()) << model << " not placed on any shard";
    EXPECT_EQ(owner.at("shard").AsInt(), ring.Lookup(model)) << model;
    EXPECT_EQ(owner.at("state").AsString(), "healthy") << model;
  }

  // Collect predict responses through the router.
  std::vector<std::string> via_router;
  for (const std::string model : {"alpha", "beta"}) {
    ASSERT_TRUE(client.SendLine(PredictLine(model, Ref(model).row, 1234)));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line, 60.0)) << model;
    ExpectPredictOk(line, model, 1234);
    via_router.push_back(line);
  }

  // The same requests against an in-process worker loaded from the same
  // files must produce byte-identical response lines — the router
  // forwards worker responses without re-encoding them.
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("alpha", Path("alpha")).ok());
  ASSERT_TRUE(registry.Load("beta", Path("beta")).ok());
  serve::SocketServer::Options worker_options;
  worker_options.batcher.max_delay_ms = 1.0;
  serve::ServerHarness direct(&registry, worker_options);
  ASSERT_TRUE(direct.Start());
  TestClient direct_client(direct.port());
  ASSERT_TRUE(direct_client.connected());
  size_t i = 0;
  for (const std::string model : {"alpha", "beta"}) {
    ASSERT_TRUE(
        direct_client.SendLine(PredictLine(model, Ref(model).row, 1234)));
    std::string line;
    ASSERT_TRUE(direct_client.ReadLine(&line, 60.0)) << model;
    EXPECT_EQ(via_router[i++], line)
        << model << ": router response is not bitwise-identical";
  }
  EXPECT_EQ(direct.Stop(), 0);

  // list fans out and annotates each model with its shard.
  ASSERT_TRUE(client.SendLine("{\"op\": \"list\"}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 60.0));
  auto listed = json::Parse(line);
  ASSERT_TRUE(listed.ok()) << line;
  ASSERT_TRUE(listed->at("ok").AsBool()) << line;
  const json::JsonValue& models = listed->at("models");
  std::set<std::string> names;
  for (size_t m = 0; m < models.size(); ++m) {
    names.insert(models[m].at("name").AsString());
    EXPECT_TRUE(models[m].Contains("shard")) << line;
  }
  EXPECT_EQ(names, (std::set<std::string>{"alpha", "beta"}));

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, QuantizeForwardsToOwningShard) {
  // "quantize" rides the same control path as reload: routed to the
  // model's owner, holding predicts while in flight. Afterwards the model
  // stays resident (still answers predicts) and reports int8 precision.
  RouterHarness harness(Defaults(/*shards=*/1));
  ASSERT_TRUE(harness.Start());
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 1));
  LoadViaRouter(&client, "alpha");

  ASSERT_TRUE(client.SendLine("{\"op\": \"quantize\", \"model\": \"alpha\"}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 60.0));
  auto quant = json::Parse(line);
  ASSERT_TRUE(quant.ok()) << line;
  ASSERT_TRUE(quant->at("ok").AsBool()) << line;
  EXPECT_EQ(quant->at("op").AsString(), "quantize") << line;
  EXPECT_EQ(quant->at("precision").AsString(), "int8") << line;

  // Still resident and serving (labels may legitimately match fp32 on this
  // toy model; the assertion is only that the quantized model answers).
  ASSERT_TRUE(client.SendLine(PredictLine("alpha", Ref("alpha").row, 9)));
  ASSERT_TRUE(client.ReadLine(&line, 60.0));
  ExpectPredictOk(line, "alpha", 9);

  // list (fanned out through the router) carries the worker's label.
  ASSERT_TRUE(client.SendLine("{\"op\": \"list\"}"));
  ASSERT_TRUE(client.ReadLine(&line, 60.0));
  auto listed = json::Parse(line);
  ASSERT_TRUE(listed.ok() && listed->at("ok").AsBool()) << line;
  const json::JsonValue& models = listed->at("models");
  ASSERT_GE(models.size(), 1u) << line;
  EXPECT_EQ(models[0].at("precision").AsString(), "int8") << line;

  // Unknown model: structured error, not a hang.
  ASSERT_TRUE(client.SendLine("{\"op\": \"quantize\", \"model\": \"ghost\"}"));
  ASSERT_TRUE(client.ReadLine(&line, 60.0));
  auto ghost = json::Parse(line);
  ASSERT_TRUE(ghost.ok()) << line;
  EXPECT_FALSE(ghost->at("ok").AsBool()) << line;

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, KilledWorkerRebalancesWithZeroLostPredicts) {
  auto options = Defaults();
  // Park predicts in the worker's batcher long enough to kill the shard
  // while they are in flight.
  options.worker_args = {"--max-delay-ms", "400", "--max-batch", "64"};
  options.max_retries = 1;
  RouterHarness harness(options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 2));
  LoadViaRouter(&client, "alpha");
  const json::JsonValue owner = OwnerEntry(StatsViaRouter(&client), "alpha");
  ASSERT_TRUE(owner.is_object());
  const pid_t owner_pid = static_cast<pid_t>(owner.at("pid").AsInt());
  ASSERT_GT(owner_pid, 0);

  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine(PredictLine("alpha", Ref("alpha").row, i)));
  }
  // Give the router a beat to forward the burst into the doomed worker's
  // batcher, then kill it hard mid-batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(owner_pid, SIGKILL), 0);

  // Every accepted predict must still be answered correctly: the router
  // retries the in-flight ones against the successor shard after it
  // rebalances the model there.
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line, 90.0)) << "response " << i;
    ExpectPredictOk(line, "alpha", i);
  }

  const json::JsonValue stats = StatsViaRouter(&client);
  const json::JsonValue& router = stats.at("router");
  EXPECT_GE(router.at("worker_deaths").AsInt(), 1);
  EXPECT_GE(router.at("retries").AsInt(), 1);
  const json::JsonValue new_owner = OwnerEntry(stats, "alpha");
  ASSERT_TRUE(new_owner.is_object()) << "alpha lost after rebalance";
  EXPECT_NE(static_cast<pid_t>(new_owner.at("pid").AsInt()), owner_pid);

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, KilledWorkerFailsFastWhenRetriesAreDisabled) {
  auto options = Defaults();
  options.worker_args = {"--max-delay-ms", "400", "--max-batch", "64"};
  options.max_retries = 0;
  RouterHarness harness(options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 2));
  LoadViaRouter(&client, "alpha");
  const json::JsonValue owner = OwnerEntry(StatsViaRouter(&client), "alpha");
  ASSERT_TRUE(owner.is_object());
  const pid_t owner_pid = static_cast<pid_t>(owner.at("pid").AsInt());

  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine(PredictLine("alpha", Ref("alpha").row, i)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(owner_pid, SIGKILL), 0);

  // Without retries the in-flight predicts fail fast — but with a
  // structured error naming the cause, never a dropped connection.
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line, 60.0)) << "response " << i;
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
    EXPECT_NE(parsed->at("error").AsString().find("unavailable"),
              std::string::npos)
        << line;
  }

  // The model still rebalances: a fresh predict succeeds on the successor.
  ASSERT_TRUE(client.SendLine(PredictLine("alpha", Ref("alpha").row, 99)));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 90.0));
  ExpectPredictOk(line, "alpha", 99);

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, HungWorkerIsEvictedAndRespawned) {
  auto options = Defaults();
  options.health_interval_s = 0.1;
  options.health_timeout_s = 0.6;
  RouterHarness harness(options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 2));
  LoadViaRouter(&client, "alpha");
  const json::JsonValue owner = OwnerEntry(StatsViaRouter(&client), "alpha");
  ASSERT_TRUE(owner.is_object());
  const pid_t owner_pid = static_cast<pid_t>(owner.at("pid").AsInt());

  // A stopped worker answers nothing: the health checker must notice the
  // missed pongs, evict (SIGKILL) it, and respawn a replacement.
  ASSERT_EQ(::kill(owner_pid, SIGSTOP), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool recovered = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const json::JsonValue stats = StatsViaRouter(&client);
    if (!stats.is_object() || !stats.Contains("router")) {
      break;  // client connection failed; the assertions below report it
    }
    const json::JsonValue& router = stats.at("router");
    if (router.at("health_evictions").AsInt() >= 1 &&
        router.at("respawns").AsInt() >= 1 &&
        router.at("healthy_shards").AsInt() == 2) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(recovered) << "router never evicted and respawned the shard";

  // The model survives the eviction and serves again.
  ASSERT_TRUE(client.SendLine(PredictLine("alpha", Ref("alpha").row, 7)));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 90.0));
  ExpectPredictOk(line, "alpha", 7);

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, LocalOpsAndStatsRollupShape) {
  RouterHarness harness(Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NO_FATAL_FAILURE(WaitForHealthyShards(&client, 2));

  // ping is answered by the router itself, echoing the id.
  ASSERT_TRUE(client.SendLine("{\"op\": \"ping\", \"id\": 42}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 30.0));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << line;
  EXPECT_EQ(parsed->at("op").AsString(), "ping") << line;
  EXPECT_EQ(parsed->at("id").AsInt(), 42) << line;

  // Unknown ops and streaming ops get structured errors, not hangs.
  ASSERT_TRUE(client.SendLine("{\"op\": \"bogus\"}"));
  ASSERT_TRUE(client.ReadLine(&line, 30.0));
  parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
  EXPECT_NE(parsed->at("error").AsString().find("unknown op 'bogus'"),
            std::string::npos)
      << line;

  ASSERT_TRUE(client.SendLine("{\"op\": \"stream_open\", \"model\": \"a\"}"));
  ASSERT_TRUE(client.ReadLine(&line, 30.0));
  parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
  EXPECT_NE(parsed->at("error").AsString().find("streaming"),
            std::string::npos)
      << line;

  // The stats rollup carries router-level counters plus per-shard state.
  const json::JsonValue stats = StatsViaRouter(&client);
  ASSERT_TRUE(stats.Contains("router")) << stats.Dump();
  const json::JsonValue& router = stats.at("router");
  EXPECT_EQ(router.at("pid").AsInt(), static_cast<int64_t>(::getpid()));
  EXPECT_GE(router.at("uptime_s").AsNumber(), 0.0);
  EXPECT_GT(router.at("rss_bytes").AsInt(), 0);
  EXPECT_EQ(router.at("shards").AsInt(), 2);
  EXPECT_EQ(router.at("healthy_shards").AsInt(), 2);
  EXPECT_GE(router.at("requests").AsInt(), 1);
  const json::JsonValue& shards = stats.at("shards");
  ASSERT_EQ(shards.size(), 2u);
  for (size_t i = 0; i < shards.size(); ++i) {
    const json::JsonValue& entry = shards[i];
    EXPECT_EQ(entry.at("state").AsString(), "healthy") << entry.Dump();
    EXPECT_GT(entry.at("pid").AsInt(), 0) << entry.Dump();
    EXPECT_GT(entry.at("port").AsInt(), 0) << entry.Dump();
    ASSERT_TRUE(entry.Contains("stats")) << entry.Dump();
    // The embedded worker stats document carries the satellite fields.
    const json::JsonValue& server = entry.at("stats").at("server");
    EXPECT_GE(server.at("uptime_s").AsNumber(), 0.0);
    EXPECT_GT(server.at("rss_bytes").AsInt(), 0);
    EXPECT_EQ(server.at("pid").AsInt(), entry.at("pid").AsInt());
  }

  // quit closes the connection after answering.
  ASSERT_TRUE(client.SendLine("{\"op\": \"quit\"}"));
  ASSERT_TRUE(client.ReadLine(&line, 30.0));
  parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << line;
  EXPECT_TRUE(client.WaitForEof());

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, HttpClientsWorkThroughTheRouter) {
  RouterHarness harness(Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw("GET /v1/healthz HTTP/1.1\r\n\r\n"));
  serve::TestHttpResponse resp;
  ASSERT_TRUE(client.ReadHttpResponse(&resp, 30.0));
  EXPECT_EQ(resp.status, 200);
  auto parsed = json::Parse(resp.body);
  ASSERT_TRUE(parsed.ok()) << resp.body;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << resp.body;

  // Keep-alive: a second request on the same connection — the aggregated
  // stats document over HTTP.
  ASSERT_TRUE(client.SendRaw("GET /v1/stats HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.ReadHttpResponse(&resp, 30.0));
  EXPECT_EQ(resp.status, 200);
  parsed = json::Parse(resp.body);
  ASSERT_TRUE(parsed.ok()) << resp.body;
  EXPECT_EQ(parsed->at("router").at("shards").AsInt(), 2) << resp.body;

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(RouterTest, NoHealthyShardsAnswersStructuredUnavailable) {
  Router::Options options;
  options.num_shards = 2;
  // A worker that exits immediately: the ring never gains a node, so the
  // router must degrade to structured errors instead of hanging.
  options.worker_binary = "/bin/false";
  options.respawn_backoff_s = 0.2;
  RouterHarness harness(options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(
      "{\"op\": \"predict\", \"model\": \"alpha\", \"values\": [[1, 2]]}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line, 30.0));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
  EXPECT_NE(parsed->at("error").AsString().find("no healthy shards"),
            std::string::npos)
      << line;

  // Fanout ops still answer with the router-only aggregate. The first
  // worker exit may not have been reaped yet, so poll for the death count.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  json::JsonValue stats;
  while (true) {
    stats = StatsViaRouter(&client);
    ASSERT_TRUE(stats.Contains("router")) << stats.Dump();
    if (stats.at("router").at("worker_deaths").AsInt() >= 1 ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(stats.at("router").at("healthy_shards").AsInt(), 0);
  EXPECT_GE(stats.at("router").at("worker_deaths").AsInt(), 1);

  EXPECT_EQ(harness.Stop(), 0);
}

}  // namespace
}  // namespace units::router
