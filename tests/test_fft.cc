#include "tensor/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"

namespace units::fft {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(128), 128);
  EXPECT_EQ(NextPowerOfTwo(129), 256);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<float>> x(8, {0.0f, 0.0f});
  x[0] = {1.0f, 0.0f};
  Fft(&x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<float>> x(64);
  for (auto& v : x) {
    v = {static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal())};
  }
  auto original = x;
  Fft(&x, /*inverse=*/false);
  Fft(&x, /*inverse=*/true);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-4);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-4);
  }
}

TEST(FftTest, PureToneConcentratesEnergy) {
  const int n = 64;
  std::vector<float> signal(n);
  const int k = 5;  // 5 cycles over the window
  for (int t = 0; t < n; ++t) {
    signal[static_cast<size_t>(t)] =
        std::sin(2.0 * M_PI * k * t / static_cast<double>(n));
  }
  auto spectrum = RealFft(signal);
  // Bin k should dominate every other non-mirror bin.
  const float peak = std::abs(spectrum[k]);
  for (int b = 0; b <= n / 2; ++b) {
    if (b != k) {
      EXPECT_LT(std::abs(spectrum[static_cast<size_t>(b)]), peak * 0.01f);
    }
  }
  EXPECT_NEAR(peak, n / 2.0f, 1e-2);
}

TEST(FftTest, RealRoundTripWithPadding) {
  Rng rng(2);
  std::vector<float> signal(100);  // not a power of two
  for (auto& v : signal) {
    v = static_cast<float>(rng.Normal());
  }
  auto spectrum = RealFft(signal);
  EXPECT_EQ(spectrum.size(), 128u);
  auto restored = InverseRealFft(std::move(spectrum), 100);
  ASSERT_EQ(restored.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(restored[i], signal[i], 1e-4);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  Rng rng(3);
  std::vector<std::complex<float>> x(32);
  for (auto& v : x) {
    v = {static_cast<float>(rng.Normal()), 0.0f};
  }
  double time_energy = 0.0;
  for (const auto& v : x) {
    time_energy += std::norm(v);
  }
  Fft(&x);
  double freq_energy = 0.0;
  for (const auto& v : x) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy / 32.0, time_energy, 1e-3 * time_energy);
}

TEST(FftTest, MagnitudeSpectrumSizeAndDc) {
  std::vector<float> constant(16, 2.0f);
  auto mags = MagnitudeSpectrum(constant);
  EXPECT_EQ(mags.size(), 9u);  // 16/2 + 1
  EXPECT_NEAR(mags[0], 32.0f, 1e-4);  // DC = sum of samples
  for (size_t i = 1; i < mags.size(); ++i) {
    EXPECT_NEAR(mags[i], 0.0f, 1e-4);
  }
}

TEST(FftTest, LinearityProperty) {
  Rng rng(4);
  std::vector<float> a(32);
  std::vector<float> b(32);
  std::vector<float> sum(32);
  for (size_t i = 0; i < 32; ++i) {
    a[i] = static_cast<float>(rng.Normal());
    b[i] = static_cast<float>(rng.Normal());
    sum[i] = a[i] + b[i];
  }
  auto fa = RealFft(a);
  auto fb = RealFft(b);
  auto fsum = RealFft(sum);
  for (size_t i = 0; i < fsum.size(); ++i) {
    EXPECT_NEAR(fsum[i].real(), fa[i].real() + fb[i].real(), 1e-3);
    EXPECT_NEAR(fsum[i].imag(), fa[i].imag() + fb[i].imag(), 1e-3);
  }
}

}  // namespace
}  // namespace units::fft
