// HTTP/1.1 adapter tests: unit coverage for the incremental request
// parser, protocol sniffing, and request/response translation, plus raw-
// socket conformance against a live SocketServer — keep-alive pipelining,
// status mapping (200/400/404/405/411/413/501/503), Connection: close,
// HTTP/1.0 defaults, and NDJSON + HTTP clients sharing one port. Built as
// its own executable so the sanitizer CI jobs can exercise the adapter
// under the full event loop.

#include "serve/http_adapter.h"

#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"
#include "serve/model_registry.h"
#include "serve_test_util.h"
#include "socket_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

// --- Parser unit tests -----------------------------------------------------

TEST(HttpRequestParserTest, ParsesRequestsIncrementally) {
  HttpRequestParser parser;
  HttpRequest request;
  std::string buffer;
  const std::string raw =
      "POST /v1/predict?trace=1 HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 13\r\n"
      "\r\n"
      "{\"model\":\"a\"}";
  // Feed one byte at a time: the parser must keep answering kNeedMore
  // until the final byte completes the body.
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    buffer.push_back(raw[i]);
    ASSERT_EQ(parser.Next(&buffer, &request),
              HttpRequestParser::Outcome::kNeedMore)
        << "at byte " << i;
  }
  buffer.push_back(raw.back());
  ASSERT_EQ(parser.Next(&buffer, &request),
            HttpRequestParser::Outcome::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/predict");  // query string stripped
  EXPECT_EQ(request.body, "{\"model\":\"a\"}");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(buffer.empty());
}

TEST(HttpRequestParserTest, SkipsCrlfPaddingBetweenRequests) {
  HttpRequestParser parser;
  HttpRequest request;
  std::string buffer =
      "\r\n\r\nGET /v1/healthz HTTP/1.1\r\n\r\n"
      "\r\nGET /v1/stats HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.Next(&buffer, &request),
            HttpRequestParser::Outcome::kRequest);
  EXPECT_EQ(request.target, "/v1/healthz");
  ASSERT_EQ(parser.Next(&buffer, &request),
            HttpRequestParser::Outcome::kRequest);
  EXPECT_EQ(request.target, "/v1/stats");
  EXPECT_EQ(parser.Next(&buffer, &request),
            HttpRequestParser::Outcome::kNeedMore);
}

TEST(HttpRequestParserTest, KeepAliveFollowsVersionAndConnectionHeader) {
  struct Case {
    const char* raw;
    bool keep_alive;
  };
  const std::vector<Case> cases = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    HttpRequest request;
    std::string buffer = c.raw;
    ASSERT_EQ(parser.Next(&buffer, &request),
              HttpRequestParser::Outcome::kRequest)
        << c.raw;
    EXPECT_EQ(request.keep_alive, c.keep_alive) << c.raw;
  }
}

TEST(HttpRequestParserTest, FramingErrorsCarryTheirStatus) {
  struct Case {
    const char* raw;
    int status;
  };
  const std::vector<Case> cases = {
      {"GARBAGE\r\n\r\n", 400},                              // no spaces
      {"GET /x HTTP/9.9\r\n\r\n", 400},                      // bad version
      {"GET noslash HTTP/1.1\r\n\r\n", 400},                 // bad target
      {"GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400},     // no colon
      {"POST /x HTTP/1.1\r\n\r\n", 411},                     // no length
      {"POST /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n", 400},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    HttpRequest request;
    std::string buffer = c.raw;
    ASSERT_EQ(parser.Next(&buffer, &request),
              HttpRequestParser::Outcome::kError)
        << c.raw;
    EXPECT_EQ(parser.status(), c.status) << c.raw;
    EXPECT_FALSE(parser.error().empty()) << c.raw;
  }
}

TEST(HttpRequestParserTest, EnforcesHeaderAndBodyLimits) {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;
  {
    HttpRequestParser parser(limits);
    HttpRequest request;
    std::string buffer =
        "GET / HTTP/1.1\r\nX-Pad: " + std::string(256, 'x') + "\r\n\r\n";
    ASSERT_EQ(parser.Next(&buffer, &request),
              HttpRequestParser::Outcome::kError);
    EXPECT_EQ(parser.status(), 400);
  }
  {
    HttpRequestParser parser(limits);
    HttpRequest request;
    // The declared length alone must trip the limit, before any body
    // bytes arrive — a client cannot make the server buffer the payload.
    std::string buffer = "POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
    ASSERT_EQ(parser.Next(&buffer, &request),
              HttpRequestParser::Outcome::kError);
    EXPECT_EQ(parser.status(), 413);
  }
}

TEST(HttpSniffTest, DecidesOnMethodPrefixes) {
  bool decided = false;
  EXPECT_TRUE(SniffHttp("GET /v1/healthz", &decided));
  EXPECT_TRUE(decided);
  EXPECT_TRUE(SniffHttp("POST ", &decided));
  EXPECT_TRUE(decided);
  EXPECT_FALSE(SniffHttp("{\"op\": \"ping\"}", &decided));
  EXPECT_TRUE(decided);
  // Prefixes of a method are still ambiguous: wait for more bytes.
  EXPECT_FALSE(SniffHttp("GE", &decided));
  EXPECT_FALSE(decided);
  EXPECT_FALSE(SniffHttp("POST", &decided));
  EXPECT_FALSE(decided);
}

TEST(HttpTranslationTest, RoutesMapToProtocolOps) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/predict";
  request.body = "{\"model\": \"m\", \"id\": 7, \"op\": \"quit\"}";
  auto line = HttpRequestToLine(request);
  ASSERT_TRUE(line.ok());
  auto parsed = json::Parse(*line);
  ASSERT_TRUE(parsed.ok()) << *line;
  // The op is forced to predict — a body cannot smuggle another op in.
  EXPECT_EQ(parsed->at("op").AsString(), "predict");
  EXPECT_EQ(parsed->at("model").AsString(), "m");
  EXPECT_EQ(parsed->at("id").AsInt(), 7);

  request.method = "GET";
  request.body.clear();
  for (const auto& [target, op] :
       std::vector<std::pair<std::string, std::string>>{
           {"/v1/stats", "stats"},
           {"/v1/healthz", "ping"},
           {"/v1/models", "list"}}) {
    request.target = target;
    line = HttpRequestToLine(request);
    ASSERT_TRUE(line.ok()) << target;
    parsed = json::Parse(*line);
    ASSERT_TRUE(parsed.ok()) << *line;
    EXPECT_EQ(parsed->at("op").AsString(), op) << target;
  }
}

TEST(HttpTranslationTest, RouteErrorsEncodeTheirHttpStatus) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/v1/predict";
  auto line = HttpRequestToLine(request);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().message().rfind("405 ", 0), 0u)
      << line.status().message();

  request.target = "/v2/elsewhere";
  line = HttpRequestToLine(request);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().message().rfind("404 ", 0), 0u)
      << line.status().message();

  request.method = "POST";
  request.target = "/v1/predict";
  request.body = "not json";
  line = HttpRequestToLine(request);
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().message().rfind("400 ", 0), 0u)
      << line.status().message();
}

TEST(HttpTranslationTest, StatusDerivesFromProtocolResponses) {
  EXPECT_EQ(HttpStatusForLine("{\"ok\": true, \"op\": \"ping\"}"), 200);
  EXPECT_EQ(HttpStatusForLine("{\"ok\": false, \"error\": \"overloaded\"}"),
            503);
  EXPECT_EQ(HttpStatusForLine(
                "{\"ok\": false, \"error\": \"unavailable: no shards\"}"),
            503);
  EXPECT_EQ(HttpStatusForLine(
                "{\"ok\": false, \"error\": \"NotFound: model 'x' is not "
                "loaded\"}"),
            404);
  EXPECT_EQ(HttpStatusForLine("{\"ok\": false, \"error\": \"bad values\"}"),
            400);
}

// --- Conformance against a live SocketServer -------------------------------

std::string PredictBody(const Tensor& row, int64_t id) {
  const int64_t channels = row.dim(1);
  const int64_t length = row.dim(2);
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"model\": \"a\", \"id\": " << id << ", \"values\": [";
  for (int64_t d = 0; d < channels; ++d) {
    os << (d == 0 ? "[" : ", [");
    for (int64_t t = 0; t < length; ++t) {
      os << (t == 0 ? "" : ", ") << row[d * length + t];
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

std::string PostPredict(const std::string& body,
                        const std::string& extra_headers = "") {
  return "POST /v1/predict HTTP/1.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n" + extra_headers + "\r\n" + body;
}

class HttpConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new ModelRegistry();
    fitted_ = new FittedModel(MakeFitted("classification", 7));
    row_ = new Tensor(ops::Slice(fitted_->data, 0, 0, 1));
    ASSERT_TRUE(registry_->Add("a", std::move(fitted_->pipeline)).ok());
  }

  static SocketServer::Options Defaults() {
    SocketServer::Options options;
    options.port = 0;
    options.batcher.max_delay_ms = 1.0;
    return options;
  }

  static ModelRegistry* registry_;
  static FittedModel* fitted_;
  static Tensor* row_;
};

ModelRegistry* HttpConformanceTest::registry_ = nullptr;
FittedModel* HttpConformanceTest::fitted_ = nullptr;
Tensor* HttpConformanceTest::row_ = nullptr;

TEST_F(HttpConformanceTest, KeepAliveClientRunsPredictStatsHealthz) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  // predict, stats, and healthz on one keep-alive connection — the
  // workflow a load balancer health-checking a worker runs.
  ASSERT_TRUE(client.SendRaw(PostPredict(PredictBody(*row_, 5))));
  TestHttpResponse resp;
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers["content-type"], "application/json");
  EXPECT_EQ(resp.headers["connection"], "keep-alive");
  ASSERT_FALSE(resp.body.empty());
  EXPECT_EQ(resp.body.back(), '\n');  // protocol line stays line-terminated
  auto parsed = json::Parse(resp.body);
  ASSERT_TRUE(parsed.ok()) << resp.body;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << resp.body;
  EXPECT_EQ(parsed->at("id").AsInt(), 5) << resp.body;
  EXPECT_EQ(parsed->at("model").AsString(), "a") << resp.body;

  ASSERT_TRUE(client.SendRaw("GET /v1/stats HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  parsed = json::Parse(resp.body);
  ASSERT_TRUE(parsed.ok()) << resp.body;
  const json::JsonValue& stats = parsed->at("stats");
  // The stats document carries the process-level satellite fields.
  EXPECT_GE(stats.at("server").at("uptime_s").AsNumber(), 0.0);
  EXPECT_GT(stats.at("server").at("rss_bytes").AsInt(), 0);
  EXPECT_GE(stats.at("totals").at("requests").AsInt(), 1);

  ASSERT_TRUE(client.SendRaw("GET /v1/healthz HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  parsed = json::Parse(resp.body);
  ASSERT_TRUE(parsed.ok()) << resp.body;
  EXPECT_EQ(parsed->at("op").AsString(), "ping") << resp.body;

  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, PipelinedRequestsAnswerInOrder) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  // Both requests in one write; responses must come back FIFO.
  ASSERT_TRUE(client.SendRaw(PostPredict(PredictBody(*row_, 1)) +
                             PostPredict(PredictBody(*row_, 2))));
  for (int64_t id : {1, 2}) {
    TestHttpResponse resp;
    ASSERT_TRUE(client.ReadHttpResponse(&resp)) << "response " << id;
    EXPECT_EQ(resp.status, 200);
    auto parsed = json::Parse(resp.body);
    ASSERT_TRUE(parsed.ok()) << resp.body;
    EXPECT_EQ(parsed->at("id").AsInt(), id) << resp.body;
  }
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, RouteErrorsKeepTheConnectionUsable) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendRaw("GET /v1/predict HTTP/1.1\r\n\r\n"));
  TestHttpResponse resp;
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 405);

  ASSERT_TRUE(client.SendRaw("GET /v2/elsewhere HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 404);

  // Unknown model: the protocol's NotFound maps to 404.
  ASSERT_TRUE(client.SendRaw(PostPredict(
      "{\"model\": \"zzz\", \"values\": [[1, 2], [3, 4]]}")));
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 404) << resp.body;

  // The same connection still serves real requests afterwards.
  ASSERT_TRUE(client.SendRaw(PostPredict(PredictBody(*row_, 9))));
  ASSERT_TRUE(client.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, FramingErrorsAnswerThenClose) {
  struct Case {
    std::string raw;
    int status;
  };
  const std::vector<Case> cases = {
      {"POST /v1/predict HTTP/1.1\r\n\r\n", 411},
      {"GET /v1/healthz HTTP/9.9\r\n\r\n", 400},
      {"POST /v1/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       501},
      {"POST /v1/predict HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n", 413},
  };
  auto options = Defaults();
  options.session.max_line_bytes = 64 * 1024;
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());
  for (const Case& c : cases) {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(c.raw));
    TestHttpResponse resp;
    ASSERT_TRUE(client.ReadHttpResponse(&resp)) << c.raw;
    EXPECT_EQ(resp.status, c.status) << c.raw;
    EXPECT_EQ(resp.headers["connection"], "close") << c.raw;
    EXPECT_TRUE(client.WaitForEof()) << c.raw;
  }
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, ConnectionCloseAndHttp10CloseAfterResponse) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());
  {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(
        "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
    TestHttpResponse resp;
    ASSERT_TRUE(client.ReadHttpResponse(&resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.headers["connection"], "close");
    EXPECT_TRUE(client.WaitForEof());
  }
  {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw("GET /v1/healthz HTTP/1.0\r\n\r\n"));
    TestHttpResponse resp;
    ASSERT_TRUE(client.ReadHttpResponse(&resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.headers["connection"], "close");
    EXPECT_TRUE(client.WaitForEof());
  }
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, OverloadShedsMapTo503) {
  auto options = Defaults();
  // One admission slot and a long flush delay: the head of the burst is
  // admitted and parks in the batcher, everything behind it sheds.
  options.admission.max_queue = 1;
  options.batcher.max_batch_size = 64;
  options.batcher.max_delay_ms = 200.0;
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 8;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += PostPredict(PredictBody(*row_, i));
  }
  ASSERT_TRUE(client.SendRaw(burst));
  int ok = 0, shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    TestHttpResponse resp;
    ASSERT_TRUE(client.ReadHttpResponse(&resp)) << "response " << i;
    if (resp.status == 200) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status, 503) << resp.body;
      ++shed;
    }
  }
  // With a queue of one and a slow flush, the burst cannot all be
  // admitted — but the head of it must be.
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(HttpConformanceTest, NdjsonAndHttpClientsShareOnePort) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient ndjson(harness.port());
  TestClient http(harness.port());
  ASSERT_TRUE(ndjson.connected());
  ASSERT_TRUE(http.connected());

  // Interleave: open both, send HTTP first, then NDJSON, read both.
  ASSERT_TRUE(http.SendRaw(PostPredict(PredictBody(*row_, 1))));
  ASSERT_TRUE(ndjson.SendLine("{\"op\": \"ping\", \"id\": 2}"));

  TestHttpResponse resp;
  ASSERT_TRUE(http.ReadHttpResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  std::string line;
  ASSERT_TRUE(ndjson.ReadLine(&line));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << line;
  EXPECT_EQ(parsed->at("id").AsInt(), 2) << line;

  EXPECT_EQ(harness.Stop(), 0);
}

}  // namespace
}  // namespace units::serve
