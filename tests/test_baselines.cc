#include "core/baselines.h"
#include <cmath>

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

UnitsPipeline::Config TinyConfig() {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive", "masked_autoregression"};
  cfg.task = "classification";
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.seed = 3;
  return cfg;
}

TEST(ScratchBaselineTest, SingleTemplateAndFullLr) {
  auto scratch = MakeScratchBaseline(TinyConfig(), 2, 3);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ((*scratch)->num_templates(), 1u);
  EXPECT_EQ((*scratch)->finetune_params().GetDouble("encoder_lr_scale", 0),
            1.0);
  EXPECT_EQ((*scratch)->finetune_params().GetInt("epochs", 0), 6);  // 2 * 3
}

TEST(ScratchBaselineTest, TrainsWithoutPretraining) {
  data::ClassificationOpts opts;
  opts.num_samples = 20;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 6;
  auto data = data::MakeClassificationDataset(opts);
  auto scratch = MakeScratchBaseline(TinyConfig(), 2, 1);
  ASSERT_TRUE(scratch.ok());
  EXPECT_FALSE((*scratch)->pretrained());
  ASSERT_TRUE((*scratch)->FineTune(data).ok());
  auto result = (*scratch)->Predict(data.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.size(), 20u);
}

TEST(RawKMeansTest, ClustersFlattenedSeries) {
  data::ClassificationOpts opts;
  opts.num_samples = 24;
  opts.num_classes = 2;
  opts.num_channels = 1;
  opts.length = 16;
  opts.noise = 0.05f;
  opts.seed = 7;
  auto data = data::MakeClassificationDataset(opts);
  Rng rng(1);
  auto labels = RawKMeansClustering(data.values(), 2, &rng);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 24u);
  std::set<int64_t> distinct(labels->begin(), labels->end());
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(RawKMeansTest, RejectsWrongRank) {
  Rng rng(2);
  EXPECT_FALSE(RawKMeansClustering(Tensor::Zeros({4, 8}), 2, &rng).ok());
}

TEST(NaiveForecastTest, RepeatsLastValue) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 7});
  Tensor pred = NaiveForecast(x, 3);
  EXPECT_EQ(pred.shape(), (Shape{1, 1, 3}));
  for (int64_t h = 0; h < 3; ++h) {
    EXPECT_EQ(pred.At({0, 0, h}), 7.0f);
  }
}

TEST(SeasonalNaiveTest, RepeatsLastPeriod) {
  // Period 3, series [..., 4, 5, 6]: forecast cycles 4, 5, 6, 4, ...
  Tensor x = Tensor::FromVector({1, 1, 6}, {1, 2, 3, 4, 5, 6});
  Tensor pred = SeasonalNaiveForecast(x, 4, 3);
  EXPECT_EQ(pred.At({0, 0, 0}), 4.0f);
  EXPECT_EQ(pred.At({0, 0, 1}), 5.0f);
  EXPECT_EQ(pred.At({0, 0, 2}), 6.0f);
  EXPECT_EQ(pred.At({0, 0, 3}), 4.0f);
}

TEST(SeasonalNaiveTest, PeriodicSeriesIsPredictedExactly) {
  // For a perfectly periodic series, seasonal naive has zero error while
  // plain naive does not.
  const int64_t t = 32;
  const int64_t period = 8;
  Tensor x = Tensor::Zeros({1, 1, t});
  Tensor future = Tensor::Zeros({1, 1, period});
  for (int64_t i = 0; i < t; ++i) {
    x.At({0, 0, i}) = std::sin(2.0 * M_PI * (i % period) / period);
  }
  for (int64_t i = 0; i < period; ++i) {
    future.At({0, 0, i}) = std::sin(2.0 * M_PI * ((t + i) % period) / period);
  }
  Tensor seasonal = SeasonalNaiveForecast(x, period, period);
  Tensor naive = NaiveForecast(x, period);
  EXPECT_LT(metrics::MeanSquaredError(future, seasonal), 1e-8);
  EXPECT_GT(metrics::MeanSquaredError(future, naive), 0.1);
}

}  // namespace
}  // namespace units::core
