// Tests for the serving runtime: model registry, dynamic micro-batcher,
// and serve stats. The central claim under test is the determinism
// contract from DESIGN.md §9 — a batched Predict is bitwise row-identical
// to sequential single-request Predicts, at any batch size and any thread
// count. Built as its own executable so the ThreadSanitizer CI job can run
// the concurrency paths directly.

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() {
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

core::UnitsPipeline::Config TinyConfig(const std::string& task) {
  core::UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = core::ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("batch_size", 8);
  cfg.seed = 7;
  return cfg;
}

data::TimeSeriesDataset TinyClassData() {
  data::ClassificationOpts opts;
  opts.num_samples = 12;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 5;
  return data::MakeClassificationDataset(opts);
}

data::TimeSeriesDataset TinyForecastData() {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 300;
  opts.seed = 9;
  return data::MakeForecastDataset(opts, 32, 16, 8);
}

data::TimeSeriesDataset TinyAnomalyData() {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 300;
  opts.seed = 11;
  return data::TimeSeriesDataset(
      data::SlidingWindows(data::MakeCleanSeries(opts), 32, 16));
}

/// A fitted pipeline for `task`, plus data it can serve, at toy scale.
struct FittedModel {
  std::unique_ptr<core::UnitsPipeline> pipeline;
  Tensor data;  // [N, 2, 32]
};

FittedModel MakeFitted(const std::string& task) {
  auto cfg = TinyConfig(task);
  data::TimeSeriesDataset dataset = TinyClassData();
  if (task == "clustering") {
    cfg.finetune_params.SetInt("num_clusters", 2);
    cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  } else if (task == "forecasting" || task == "imputation") {
    dataset = TinyForecastData();
  } else if (task == "anomaly_detection") {
    dataset = TinyAnomalyData();
  }
  auto pipeline = core::UnitsPipeline::Create(cfg, 2);
  EXPECT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->FineTune(dataset).ok());
  return FittedModel{std::move(*pipeline), dataset.values()};
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

void ExpectBitwiseEqual(const core::TaskResult& a, const core::TaskResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  ExpectBitwiseEqual(a.predictions, b.predictions, what + " predictions");
  ExpectBitwiseEqual(a.scores, b.scores, what + " scores");
}

TEST(ModelRegistryTest, LoadListGetUnload) {
  const std::string path = ::testing::TempDir() + "/serve_reg.json";
  FittedModel fitted = MakeFitted("classification");
  ASSERT_TRUE(fitted.pipeline->SaveJson(path).ok());

  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_TRUE(registry.Load("cls", path).ok());
  EXPECT_EQ(registry.List(), std::vector<std::string>{"cls"});

  auto handle = registry.Get("cls");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->name(), "cls");
  EXPECT_EQ((*handle)->task(), "classification");
  EXPECT_EQ((*handle)->path(), path);
  EXPECT_EQ((*handle)->input_channels(), 2);

  EXPECT_TRUE(registry.Reload("cls").ok());
  EXPECT_TRUE(registry.Unload("cls").ok());
  EXPECT_EQ(registry.Get("cls").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Unload("cls").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Reload("cls").code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, LoadRejectsBadInput) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Load("m", "/no/such/model.json").ok());
  EXPECT_FALSE(registry.Load("", "/also/irrelevant.json").ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistryTest, AdoptedModelServesButCannotReload) {
  FittedModel fitted = MakeFitted("classification");
  Tensor one = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("mem", std::move(fitted.pipeline)).ok());
  auto handle = registry.Get("mem");
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE((*handle)->Predict(one).ok());
  EXPECT_EQ(registry.Reload("mem").code(), StatusCode::kFailedPrecondition);
}

TEST(ServableModelTest, RejectsWrongShapes) {
  FittedModel fitted = MakeFitted("classification");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());
  auto handle = registry.Get("m");
  ASSERT_TRUE(handle.ok());
  // Not [N, D, T].
  EXPECT_FALSE((*handle)->Predict(Tensor::Zeros({2, 32})).ok());
  // Wrong channel count.
  EXPECT_FALSE((*handle)->Predict(Tensor::Zeros({1, 3, 32})).ok());
}

/// The tentpole invariant: submitting rows one-by-one through the batcher
/// (which coalesces them into [N, D, T] forwards) yields bitwise the same
/// per-row results as direct sequential single-row Predicts — for every
/// task head, at several max_batch_size settings and thread counts.
TEST(MicroBatcherTest, BatchedMatchesSequentialAllTasks) {
  ThreadCountGuard guard;
  const char* kTasks[] = {"classification", "clustering", "forecasting",
                          "anomaly_detection", "imputation"};
  for (const char* task : kTasks) {
    SCOPED_TRACE(task);
    FittedModel fitted = MakeFitted(task);
    const int64_t n = fitted.data.dim(0);

    // Sequential single-row reference, computed at one thread.
    base::SetNumThreads(1);
    std::vector<core::TaskResult> reference;
    for (int64_t i = 0; i < n; ++i) {
      auto r = fitted.pipeline->Predict(ops::Slice(fitted.data, 0, i, 1));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reference.push_back(std::move(*r));
    }

    ModelRegistry registry;
    ASSERT_TRUE(registry.Add(task, std::move(fitted.pipeline)).ok());

    for (const int num_threads : {1, 4}) {
      base::SetNumThreads(num_threads);
      for (const int64_t max_batch : {int64_t{1}, int64_t{4}, int64_t{64}}) {
        MicroBatcher::Options options;
        options.max_batch_size = max_batch;
        options.max_delay_ms = 5.0;  // long enough that bursts coalesce
        MicroBatcher batcher(&registry, options);
        std::vector<std::future<Result<core::TaskResult>>> futures;
        for (int64_t i = 0; i < n; ++i) {
          futures.push_back(
              batcher.Submit(task, ops::Slice(fitted.data, 0, i, 1)));
        }
        for (int64_t i = 0; i < n; ++i) {
          Result<core::TaskResult> r = futures[static_cast<size_t>(i)].get();
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ExpectBitwiseEqual(
              *r, reference[static_cast<size_t>(i)],
              std::string(task) + " row " + std::to_string(i) + " (batch " +
                  std::to_string(max_batch) + ", threads " +
                  std::to_string(num_threads) + ")");
        }
      }
    }
  }
}

TEST(MicroBatcherTest, TwoModelsServeConcurrently) {
  FittedModel cls = MakeFitted("classification");
  FittedModel fcst = MakeFitted("forecasting");
  const Tensor cls_row = ops::Slice(cls.data, 0, 0, 1);
  const Tensor fcst_row = ops::Slice(fcst.data, 0, 0, 1);
  auto cls_ref = cls.pipeline->Predict(cls_row);
  auto fcst_ref = fcst.pipeline->Predict(fcst_row);
  ASSERT_TRUE(cls_ref.ok());
  ASSERT_TRUE(fcst_ref.ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("cls", std::move(cls.pipeline)).ok());
  ASSERT_TRUE(registry.Add("fcst", std::move(fcst.pipeline)).ok());

  MicroBatcher::Options options;
  options.max_batch_size = 8;
  options.max_delay_ms = 2.0;
  MicroBatcher batcher(&registry, options);
  // Interleave requests to both models; each model's dispatcher runs on
  // its own thread, so these genuinely execute concurrently.
  std::vector<std::future<Result<core::TaskResult>>> cls_futures;
  std::vector<std::future<Result<core::TaskResult>>> fcst_futures;
  for (int i = 0; i < 6; ++i) {
    cls_futures.push_back(batcher.Submit("cls", cls_row));
    fcst_futures.push_back(batcher.Submit("fcst", fcst_row));
  }
  for (int i = 0; i < 6; ++i) {
    auto c = cls_futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ExpectBitwiseEqual(*c, *cls_ref, "cls");
    auto f = fcst_futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ExpectBitwiseEqual(*f, *fcst_ref, "fcst");
  }
}

TEST(MicroBatcherTest, DelayFlushesPartialBatch) {
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  ServeStats stats;
  MicroBatcher::Options options;
  options.max_batch_size = 64;  // never reached
  options.max_delay_ms = 1.0;
  MicroBatcher batcher(&registry, options, &stats);
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit("m", row));
  }
  // The deadline, not a full batch, must trigger the flush.
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  const auto snapshot = stats.Snapshot("m");
  EXPECT_EQ(snapshot.requests, 3);
  EXPECT_GE(snapshot.batches, 1);
  for (const auto& [size, count] : snapshot.batch_histogram) {
    EXPECT_LE(size, 3);
    EXPECT_GE(count, 1);
  }
}

TEST(MicroBatcherTest, UnknownModelAndBadShapeFailFast) {
  ModelRegistry registry;
  MicroBatcher batcher(&registry, {});
  auto missing = batcher.Submit("ghost", Tensor::Zeros({2, 32}));
  EXPECT_EQ(missing.get().status().code(), StatusCode::kNotFound);

  FittedModel fitted = MakeFitted("classification");
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());
  auto bad_shape = batcher.Submit("m", Tensor::Zeros({32}));
  EXPECT_EQ(bad_shape.get().status().code(), StatusCode::kInvalidArgument);
  // Wrong channel count passes Submit (shape is per-model) but fails in
  // the model's own validation, delivered through the future.
  auto bad_channels = batcher.Submit("m", Tensor::Zeros({3, 32}));
  EXPECT_EQ(bad_channels.get().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MicroBatcherTest, ShutdownDrainsPendingRequests) {
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  MicroBatcher::Options options;
  options.max_batch_size = 64;
  options.max_delay_ms = 10000.0;  // would wait ~forever without Shutdown
  MicroBatcher batcher(&registry, options);
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(batcher.Submit("m", row));
  }
  batcher.Shutdown();
  for (auto& f : futures) {
    auto r = f.get();  // must not hang: stop forces an immediate flush
    EXPECT_TRUE(r.ok());
  }
  auto after = batcher.Submit("m", row);
  EXPECT_EQ(after.get().status().code(), StatusCode::kFailedPrecondition);
  batcher.Shutdown();  // idempotent
}

TEST(ServeStatsTest, HistogramAndQuantiles) {
  ServeStats stats;
  stats.RecordBatch("m", 2);
  stats.RecordBatch("m", 4);
  for (int i = 1; i <= 100; ++i) {
    stats.RecordRequest("m", static_cast<double>(i));
  }
  const auto snapshot = stats.Snapshot("m");
  EXPECT_EQ(snapshot.requests, 100);
  EXPECT_EQ(snapshot.batches, 2);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 3.0);
  EXPECT_EQ(snapshot.batch_histogram.at(2), 1);
  EXPECT_EQ(snapshot.batch_histogram.at(4), 1);
  // Exact nearest-rank values: index ceil(q*100)-1 of the sorted latencies
  // 1..100. The old floor(q*n) indexing reported 51/96/100 here.
  EXPECT_DOUBLE_EQ(snapshot.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(snapshot.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(snapshot.p99_ms, 99.0);

  auto json = stats.ToJson();
  ASSERT_TRUE(json.Contains("m"));
  EXPECT_EQ(json.at("m").at("requests").AsInt(), 100);
  EXPECT_TRUE(json.at("m").Contains("latency_ms"));

  stats.Reset();
  EXPECT_EQ(stats.Snapshot("m").requests, 0);
}

}  // namespace
}  // namespace units::serve
