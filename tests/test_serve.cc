// Tests for the serving runtime: model registry, dynamic micro-batcher,
// and serve stats. The central claim under test is the determinism
// contract from DESIGN.md §9 — a batched Predict is bitwise row-identical
// to sequential single-request Predicts, at any batch size and any thread
// count. Built as its own executable so the ThreadSanitizer CI job can run
// the concurrency paths directly.

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "json/json.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() {
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

TEST(ModelRegistryTest, LoadListGetUnload) {
  const std::string path = ::testing::TempDir() + "/serve_reg.json";
  FittedModel fitted = MakeFitted("classification");
  ASSERT_TRUE(fitted.pipeline->SaveJson(path).ok());

  ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_TRUE(registry.Load("cls", path).ok());
  EXPECT_EQ(registry.List(), std::vector<std::string>{"cls"});

  auto handle = registry.Get("cls");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->name(), "cls");
  EXPECT_EQ((*handle)->task(), "classification");
  EXPECT_EQ((*handle)->path(), path);
  EXPECT_EQ((*handle)->input_channels(), 2);

  EXPECT_TRUE(registry.Reload("cls").ok());
  EXPECT_TRUE(registry.Unload("cls").ok());
  EXPECT_EQ(registry.Get("cls").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Unload("cls").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Reload("cls").code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, LoadRejectsBadInput) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Load("m", "/no/such/model.json").ok());
  EXPECT_FALSE(registry.Load("", "/also/irrelevant.json").ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistryTest, AdoptedModelServesButCannotReload) {
  FittedModel fitted = MakeFitted("classification");
  Tensor one = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("mem", std::move(fitted.pipeline)).ok());
  auto handle = registry.Get("mem");
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE((*handle)->Predict(one).ok());
  EXPECT_EQ(registry.Reload("mem").code(), StatusCode::kFailedPrecondition);
}

TEST(ServableModelTest, RejectsWrongShapes) {
  FittedModel fitted = MakeFitted("classification");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());
  auto handle = registry.Get("m");
  ASSERT_TRUE(handle.ok());
  // Not [N, D, T].
  EXPECT_FALSE((*handle)->Predict(Tensor::Zeros({2, 32})).ok());
  // Wrong channel count.
  EXPECT_FALSE((*handle)->Predict(Tensor::Zeros({1, 3, 32})).ok());
}

/// The tentpole invariant: submitting rows one-by-one through the batcher
/// (which coalesces them into [N, D, T] forwards) yields bitwise the same
/// per-row results as direct sequential single-row Predicts — for every
/// task head, at several max_batch_size settings and thread counts.
TEST(MicroBatcherTest, BatchedMatchesSequentialAllTasks) {
  ThreadCountGuard guard;
  const char* kTasks[] = {"classification", "clustering", "forecasting",
                          "anomaly_detection", "imputation"};
  for (const char* task : kTasks) {
    SCOPED_TRACE(task);
    FittedModel fitted = MakeFitted(task);
    const int64_t n = fitted.data.dim(0);

    // Sequential single-row reference, computed at one thread.
    base::SetNumThreads(1);
    std::vector<core::TaskResult> reference;
    for (int64_t i = 0; i < n; ++i) {
      auto r = fitted.pipeline->Predict(ops::Slice(fitted.data, 0, i, 1));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reference.push_back(std::move(*r));
    }

    ModelRegistry registry;
    ASSERT_TRUE(registry.Add(task, std::move(fitted.pipeline)).ok());

    for (const int num_threads : {1, 4}) {
      base::SetNumThreads(num_threads);
      for (const int64_t max_batch : {int64_t{1}, int64_t{4}, int64_t{64}}) {
        MicroBatcher::Options options;
        options.max_batch_size = max_batch;
        options.max_delay_ms = 5.0;  // long enough that bursts coalesce
        // Vary the shared scheduler's worker pool across the existing
        // sweep so identity also holds regardless of which worker runs a
        // batch (1 worker serializes, 4 races batches of one model).
        options.num_workers = max_batch == 4 ? 4 : 1;
        MicroBatcher batcher(&registry, options);
        std::vector<std::future<Result<core::TaskResult>>> futures;
        for (int64_t i = 0; i < n; ++i) {
          futures.push_back(
              batcher.Submit(task, ops::Slice(fitted.data, 0, i, 1)));
        }
        for (int64_t i = 0; i < n; ++i) {
          Result<core::TaskResult> r = futures[static_cast<size_t>(i)].get();
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ExpectBitwiseEqual(
              *r, reference[static_cast<size_t>(i)],
              std::string(task) + " row " + std::to_string(i) + " (batch " +
                  std::to_string(max_batch) + ", threads " +
                  std::to_string(num_threads) + ")");
        }
      }
    }
  }
}

TEST(MicroBatcherTest, TwoModelsServeConcurrently) {
  FittedModel cls = MakeFitted("classification");
  FittedModel fcst = MakeFitted("forecasting");
  const Tensor cls_row = ops::Slice(cls.data, 0, 0, 1);
  const Tensor fcst_row = ops::Slice(fcst.data, 0, 0, 1);
  auto cls_ref = cls.pipeline->Predict(cls_row);
  auto fcst_ref = fcst.pipeline->Predict(fcst_row);
  ASSERT_TRUE(cls_ref.ok());
  ASSERT_TRUE(fcst_ref.ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("cls", std::move(cls.pipeline)).ok());
  ASSERT_TRUE(registry.Add("fcst", std::move(fcst.pipeline)).ok());

  MicroBatcher::Options options;
  options.max_batch_size = 8;
  options.max_delay_ms = 2.0;
  MicroBatcher batcher(&registry, options);
  // Interleave requests to both models; each model's dispatcher runs on
  // its own thread, so these genuinely execute concurrently.
  std::vector<std::future<Result<core::TaskResult>>> cls_futures;
  std::vector<std::future<Result<core::TaskResult>>> fcst_futures;
  for (int i = 0; i < 6; ++i) {
    cls_futures.push_back(batcher.Submit("cls", cls_row));
    fcst_futures.push_back(batcher.Submit("fcst", fcst_row));
  }
  for (int i = 0; i < 6; ++i) {
    auto c = cls_futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ExpectBitwiseEqual(*c, *cls_ref, "cls");
    auto f = fcst_futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ExpectBitwiseEqual(*f, *fcst_ref, "fcst");
  }
}

TEST(MicroBatcherTest, DelayFlushesPartialBatch) {
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  ServeStats stats;
  MicroBatcher::Options options;
  options.max_batch_size = 64;  // never reached
  options.max_delay_ms = 1.0;
  MicroBatcher batcher(&registry, options, &stats);
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit("m", row));
  }
  // The deadline, not a full batch, must trigger the flush.
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  const auto snapshot = stats.Snapshot("m");
  EXPECT_EQ(snapshot.requests, 3);
  EXPECT_GE(snapshot.batches, 1);
  for (const auto& [size, count] : snapshot.batch_histogram) {
    EXPECT_LE(size, 3);
    EXPECT_GE(count, 1);
  }
}

TEST(MicroBatcherTest, UnknownModelAndBadShapeFailFast) {
  ModelRegistry registry;
  MicroBatcher batcher(&registry, {});
  auto missing = batcher.Submit("ghost", Tensor::Zeros({2, 32}));
  EXPECT_EQ(missing.get().status().code(), StatusCode::kNotFound);

  FittedModel fitted = MakeFitted("classification");
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());
  auto bad_shape = batcher.Submit("m", Tensor::Zeros({32}));
  EXPECT_EQ(bad_shape.get().status().code(), StatusCode::kInvalidArgument);
  // Wrong channel count passes Submit (shape is per-model) but fails in
  // the model's own validation, delivered through the future.
  auto bad_channels = batcher.Submit("m", Tensor::Zeros({3, 32}));
  EXPECT_EQ(bad_channels.get().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MicroBatcherTest, ShutdownDrainsPendingRequests) {
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  MicroBatcher::Options options;
  options.max_batch_size = 64;
  options.max_delay_ms = 10000.0;  // would wait ~forever without Shutdown
  MicroBatcher batcher(&registry, options);
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(batcher.Submit("m", row));
  }
  batcher.Shutdown();
  for (auto& f : futures) {
    auto r = f.get();  // must not hang: stop forces an immediate flush
    EXPECT_TRUE(r.ok());
  }
  auto after = batcher.Submit("m", row);
  EXPECT_EQ(after.get().status().code(), StatusCode::kFailedPrecondition);
  batcher.Shutdown();  // idempotent
}

TEST(ServeStatsTest, HistogramAndQuantiles) {
  ServeStats stats;
  stats.RecordBatch("m", 2);
  stats.RecordBatch("m", 4);
  for (int i = 1; i <= 100; ++i) {
    stats.RecordRequest("m", static_cast<double>(i));
  }
  const auto snapshot = stats.Snapshot("m");
  EXPECT_EQ(snapshot.requests, 100);
  EXPECT_EQ(snapshot.batches, 2);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 3.0);
  EXPECT_EQ(snapshot.batch_histogram.at(2), 1);
  EXPECT_EQ(snapshot.batch_histogram.at(4), 1);
  // Exact nearest-rank values: index ceil(q*100)-1 of the sorted latencies
  // 1..100. The old floor(q*n) indexing reported 51/96/100 here.
  EXPECT_DOUBLE_EQ(snapshot.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(snapshot.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(snapshot.p99_ms, 99.0);

  auto json = stats.ToJson();
  ASSERT_TRUE(json.Contains("m"));
  EXPECT_EQ(json.at("m").at("requests").AsInt(), 100);
  EXPECT_TRUE(json.at("m").Contains("latency_ms"));

  stats.Reset();
  EXPECT_EQ(stats.Snapshot("m").requests, 0);
}

TEST(ServeStatsTest, LatencyRingWrapsToTrailingWindow) {
  // Past kLatencyWindow observations the ring overwrites oldest-first, so
  // quantiles must reflect only the trailing window — a long-running
  // server's p99 tracks recent behaviour, not its startup transient.
  constexpr size_t kWindow = ServeStats::kLatencyWindow;
  ServeStats stats;
  for (size_t i = 0; i < kWindow; ++i) {
    stats.RecordRequest("m", 1000.0);  // startup transient fills the ring
  }
  for (size_t i = 0; i < kWindow / 2; ++i) {
    stats.RecordRequest("m", 1.0);  // overwrites the first half
  }
  auto snapshot = stats.Snapshot("m");
  EXPECT_EQ(snapshot.requests, static_cast<int64_t>(kWindow + kWindow / 2));
  EXPECT_DOUBLE_EQ(snapshot.p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.p95_ms, 1000.0);
  EXPECT_DOUBLE_EQ(snapshot.p99_ms, 1000.0);
  // Another half-window of 2.0 evicts the last of the 1000s: the window
  // is now {1.0 x 32768, 2.0 x 32768} and the transient is gone.
  for (size_t i = 0; i < kWindow / 2; ++i) {
    stats.RecordRequest("m", 2.0);
  }
  snapshot = stats.Snapshot("m");
  EXPECT_DOUBLE_EQ(snapshot.p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.p95_ms, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.p99_ms, 2.0);
}

TEST(ServeStatsTest, StreamCountersRoundTrip) {
  ServeStats stats;
  stats.RecordStreamOpened();
  stats.RecordStreamOpened();
  stats.RecordStreamOpened();
  stats.RecordStreamShed();
  stats.RecordStreamClosed();
  stats.RecordStreamReaped();
  stats.RecordStreamActivity(4, 128);
  stats.RecordStreamActivity(1, 32);
  const auto streams = stats.Streams();
  EXPECT_EQ(streams.opened, 3);
  EXPECT_EQ(streams.shed, 1);
  EXPECT_EQ(streams.closed, 1);
  EXPECT_EQ(streams.reaped, 1);
  EXPECT_EQ(streams.active(), 1);
  EXPECT_EQ(streams.windows, 5);
  EXPECT_EQ(streams.points, 160);
  auto json = stats.ToJson();
  ASSERT_TRUE(json.Contains("streams"));
  EXPECT_EQ(json.at("streams").at("opened").AsInt(), 3);
  EXPECT_EQ(json.at("streams").at("active").AsInt(), 1);
  EXPECT_EQ(json.at("streams").at("windows").AsInt(), 5);
  stats.Reset();
  EXPECT_EQ(stats.Streams().opened, 0);
}

TEST(MicroBatcherDeathTest, RejectsInvalidOptions) {
  ModelRegistry registry;
  {
    MicroBatcher::Options options;
    options.max_batch_size = 0;
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
    options.max_batch_size = -4;
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
  }
  {
    MicroBatcher::Options options;
    options.max_delay_ms = -1.0;
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
    options.max_delay_ms = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
    options.max_delay_ms = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
  }
  {
    MicroBatcher::Options options;
    options.num_workers = 0;
    EXPECT_DEATH(MicroBatcher(&registry, options), "CHECK failed");
  }
}

/// The shared-scheduler sizing claim: batcher threads are num_workers + 1
/// regardless of how many models are resident and being served.
TEST(MicroBatcherTest, ThreadCountBoundedByWorkerPoolNotModelCount) {
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);
  // Warm the intra-op pool (created lazily) so it cannot perturb counts.
  ASSERT_TRUE(fitted.pipeline->Predict(row).ok());
  const std::string path = ::testing::TempDir() + "/serve_threads.json";
  ASSERT_TRUE(fitted.pipeline->SaveJson(path).ok());

  ModelRegistry registry;
  const int before = CountProcessThreads();
  ASSERT_GT(before, 0) << "/proc/self/status not readable";

  MicroBatcher::Options options;
  options.num_workers = 3;
  options.max_delay_ms = 0.0;
  MicroBatcher batcher(&registry, options);
  const int with_batcher = CountProcessThreads();
  EXPECT_EQ(with_batcher, before + options.num_workers + 1);

  for (int i = 0; i < 6; ++i) {
    const std::string name = "m" + std::to_string(i);
    ASSERT_TRUE(registry.Load(name, path).ok());
    auto r = batcher.Submit(name, row).get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(CountProcessThreads(), with_batcher)
      << "serving more models must not add threads";
}

/// Per-model fairness: a model receiving occasional single requests must
/// not starve behind a model being flooded — the scheduler flushes the
/// queue whose oldest request has waited longest, and a model holds at
/// most one worker.
TEST(MicroBatcherTest, TrickleModelStaysResponsiveBesideHotModel) {
  FittedModel hot = MakeFitted("classification");
  FittedModel trickle = MakeFitted("classification", 13);
  const Tensor hot_row = ops::Slice(hot.data, 0, 0, 1);
  const Tensor trickle_row = ops::Slice(trickle.data, 0, 0, 1);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("hot", std::move(hot.pipeline)).ok());
  ASSERT_TRUE(registry.Add("trickle", std::move(trickle.pipeline)).ok());

  ServeStats stats;
  MicroBatcher::Options options;
  options.max_batch_size = 8;
  options.max_delay_ms = 2.0;
  options.num_workers = 2;
  MicroBatcher batcher(&registry, options, &stats);

  std::atomic<bool> stop{false};
  std::thread flood([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::future<Result<core::TaskResult>>> burst;
      for (int i = 0; i < 8; ++i) {
        burst.push_back(batcher.Submit("hot", hot_row));
      }
      for (auto& f : burst) {
        f.get();
      }
    }
  });

  constexpr int kTrickleRequests = 10;
  double worst_ms = 0.0;
  for (int i = 0; i < kTrickleRequests; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto r = batcher.Submit("trickle", trickle_row).get();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    worst_ms = std::max(worst_ms, ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  flood.join();

  // The structural bound is max_delay plus one hot batch ahead of each
  // trickle flush — single-digit milliseconds here. The assertion is very
  // generous for slow, sanitized, single-core CI; a starving trickle queue
  // would wait for the whole flood (seconds) and still trip it.
  EXPECT_LT(worst_ms, 2000.0);
  EXPECT_EQ(stats.Snapshot("trickle").requests, kTrickleRequests);
}

/// Seeded malformed-input corpus through the full NDJSON server loop:
/// truncated JSON, random garbage, invalid UTF-8, wrong-type fields,
/// oversized lines (against the line-length cap), pathological nesting
/// (against the parser's depth cap), and overflowing number literals
/// (against the non-finite rejection). Every line must produce one
/// structured error response — never a crash, hang, or dropped reply.
/// The ASan+UBSan CI job runs this filter explicitly.
TEST(JsonLineServerFuzzTest, MalformedCorpusGetsStructuredErrors) {
  constexpr size_t kCases = 500;
  constexpr size_t kMaxLineBytes = 4096;
  std::mt19937 rng(20260805u);
  const std::string valid =
      "{\"op\": \"predict\", \"model\": \"m\", "
      "\"values\": [[1.0, 2.0], [3.0, 4.0]], \"id\": 1}";
  const std::string garbage_alphabet =
      "{}[]\",:0123456789abcdef .-+eEtrunl\\/";
  const std::vector<std::string> wrong_types = {
      "{\"op\": 7}",
      "{\"op\": [\"predict\"]}",
      "{\"op\": \"predict\", \"model\": 3, \"values\": [[1]]}",
      "{\"op\": \"predict\", \"model\": \"m\", \"values\": \"nope\"}",
      "{\"op\": \"predict\", \"model\": \"m\", \"values\": [[1, 2], [3]]}",
      "{\"op\": \"predict\", \"model\": \"m\", \"values\": [[true]]}",
      "{\"op\": \"load\", \"model\": \"m\", \"path\": 5}",
      "{\"op\": \"predict\"}",
  };

  std::ostringstream input;
  for (size_t i = 0; i < kCases; ++i) {
    std::string line;
    switch (i % 7) {
      case 0: {  // truncated valid request: a proper prefix is never JSON
        const size_t cut = 1 + rng() % (valid.size() - 1);
        line = valid.substr(0, cut);
        break;
      }
      case 1: {  // random garbage from JSON-ish bytes
        const size_t len = 1 + rng() % 80;
        for (size_t j = 0; j < len; ++j) {
          line += garbage_alphabet[rng() % garbage_alphabet.size()];
        }
        if (line.find_first_not_of(" \t") == std::string::npos) {
          line = "}";  // blank lines are skipped, keep the 1:1 mapping
        }
        break;
      }
      case 2: {  // invalid UTF-8 inside a string field
        line = "{\"op\": \"predict\", \"model\": \"";
        const char bad[] = {'\xff', '\xc3', '\xfe', '\x80'};
        for (int j = 0; j < 4; ++j) {
          line += bad[rng() % 4];
        }
        line += "\"}";
        break;
      }
      case 3:  // structurally valid JSON, wrong field types
        line = wrong_types[rng() % wrong_types.size()];
        break;
      case 4: {  // past the line-length cap
        line.assign(kMaxLineBytes + 1 + rng() % 2000, 'a');
        break;
      }
      case 5: {  // past the parser's nesting-depth cap
        line.assign(150 + rng() % 200, '[');
        break;
      }
      case 6: {  // overflowing literal: strtod yields inf, parser rejects
        const int exponent = 400 + static_cast<int>(rng() % 600);
        const std::string huge =
            (rng() % 2 == 0 ? "1e" : "-1e") + std::to_string(exponent);
        line = "{\"op\": \"predict\", \"model\": \"m\", \"values\": [" +
               huge + "]}";
        break;
      }
    }
    input << line << "\n";
  }

  ModelRegistry registry;  // empty: even a "valid" predict cannot succeed
  JsonLineServer::Options options;
  options.session.max_line_bytes = kMaxLineBytes;
  options.batcher.max_delay_ms = 0.0;
  JsonLineServer server(&registry, options);

  std::istringstream in(input.str());
  std::ostringstream out;
  EXPECT_EQ(server.Run(in, out), 0);

  std::istringstream responses(out.str());
  std::string line;
  size_t count = 0;
  while (std::getline(responses, line)) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "unparseable response: " << line;
    ASSERT_TRUE(parsed->is_object()) << line;
    ASSERT_TRUE(parsed->Contains("ok")) << line;
    EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
    ASSERT_TRUE(parsed->Contains("error")) << line;
    EXPECT_FALSE(parsed->at("error").AsString().empty()) << line;
    ++count;
  }
  EXPECT_EQ(count, kCases) << "every malformed line needs exactly one reply";
}

/// Batched and sequential Predicts stay bitwise identical when the model
/// serves from captured plans (ModelRegistry arms planning on load), and
/// the model reports its plan-arena footprint once a plan is resident.
TEST(MicroBatcherTest, PlannedServingMatchesSequentialAndReportsArena) {
  ThreadCountGuard guard;
  PlanModeGuard planned(nullptr);  // asserts captured-plan serving
  base::SetNumThreads(1);
  FittedModel fitted = MakeFitted("classification");
  const Tensor data = fitted.data;
  const int64_t n = data.dim(0);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());
  auto handle = registry.Get("m");
  ASSERT_TRUE(handle.ok());
  // Cold: no plan captured yet, so the reported arena is zero.
  EXPECT_EQ((*handle)->plan_arena_bytes(), 0);

  // Direct sequential single-row reference — this also warms the [1, D, T]
  // plan, after which the arena footprint must be visible.
  std::vector<core::TaskResult> reference;
  for (int64_t i = 0; i < n; ++i) {
    auto r = (*handle)->Predict(ops::Slice(data, 0, i, 1));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(std::move(*r));
  }
  EXPECT_GT((*handle)->plan_arena_bytes(), 0);

  MicroBatcher::Options options;
  options.max_batch_size = 4;
  options.max_delay_ms = 5.0;
  MicroBatcher batcher(&registry, options);
  std::vector<std::future<Result<core::TaskResult>>> futures;
  for (int64_t i = 0; i < n; ++i) {
    futures.push_back(batcher.Submit("m", ops::Slice(data, 0, i, 1)));
  }
  for (int64_t i = 0; i < n; ++i) {
    Result<core::TaskResult> r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitwiseEqual(*r, reference[static_cast<size_t>(i)],
                       "planned row " + std::to_string(i));
  }
  // The traffic above was actually served by captured plans.
  const plan::PlanCacheStats stats = (*handle)->pipeline()->GetPlanCacheStats();
  EXPECT_GE(stats.plans, 1);
  EXPECT_GT(stats.planned_chunks, 0);
  EXPECT_EQ((*handle)->plan_arena_bytes(), stats.arena_bytes_max);
}

/// The "stats" op reports the per-model plan cache (arena bytes, chunk
/// counters) and the admission controller's plan-memory gauge.
TEST(JsonLineServerTest, StatsReportPlanArenaAndAdmissionGauge) {
  PlanModeGuard planned(nullptr);  // asserts captured-plan serving
  FittedModel fitted = MakeFitted("classification");
  const Tensor row = ops::Slice(fitted.data, 0, 0, 1);  // [1, D, T]
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  std::ostringstream values;
  values << "[";
  for (int64_t d = 0; d < row.dim(1); ++d) {
    values << (d == 0 ? "[" : ", [");
    for (int64_t t = 0; t < row.dim(2); ++t) {
      values << (t == 0 ? "" : ", ") << row.At({0, d, t});
    }
    values << "]";
  }
  values << "]";
  std::ostringstream input;
  input << "{\"op\": \"predict\", \"model\": \"m\", \"values\": "
        << values.str() << ", \"id\": 1}\n"
        << "{\"op\": \"stats\"}\n";

  JsonLineServer::Options options;
  options.batcher.max_delay_ms = 0.0;
  options.admission.max_plan_bytes_in_flight = int64_t{1} << 30;
  JsonLineServer server(&registry, options);
  std::istringstream in(input.str());
  std::ostringstream out;
  EXPECT_EQ(server.Run(in, out), 0);

  std::istringstream responses(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(responses, line));  // predict reply
  auto predict = json::Parse(line);
  ASSERT_TRUE(predict.ok() && predict->at("ok").AsBool()) << line;
  ASSERT_TRUE(std::getline(responses, line));  // stats reply (barrier)
  auto stats = json::Parse(line);
  ASSERT_TRUE(stats.ok() && stats->at("ok").AsBool()) << line;

  const json::JsonValue& plan = stats->at("plan");
  const json::JsonValue& m = plan.at("models").at("m");
  // The predict above warmed the [1, D, T] plan.
  EXPECT_GE(m.at("plans").AsInt(), 1) << line;
  EXPECT_GT(m.at("plan_arena_bytes").AsInt(), 0) << line;
  EXPECT_GE(m.at("planned_chunks").AsInt(), 1) << line;
  // The stats barrier runs after the predict resolved, so its plan-memory
  // charge has been released again.
  EXPECT_EQ(plan.at("bytes_in_flight").AsInt(), 0) << line;
  EXPECT_EQ(plan.at("max_bytes_in_flight").AsInt(), int64_t{1} << 30)
      << line;
}

/// Scoped UNITS_GEMM_INT8 override; restores the prior value on destruction.
class Int8EnvGuard {
 public:
  explicit Int8EnvGuard(const char* value) {
    const char* prev = std::getenv("UNITS_GEMM_INT8");
    if (prev != nullptr) {
      saved_ = prev;
      had_ = true;
    }
    Apply(value);
  }
  ~Int8EnvGuard() { Apply(had_ ? saved_.c_str() : nullptr); }

 private:
  static void Apply(const char* value) {
    if (value != nullptr) {
      setenv("UNITS_GEMM_INT8", value, 1);
    } else {
      unsetenv("UNITS_GEMM_INT8");
    }
  }
  std::string saved_;
  bool had_ = false;
};

/// fp32 and int8 models coexist in one registry: quantizing one model must
/// not touch the other, precision labels must track the switch, and the
/// UNITS_GEMM_INT8=off escape hatch must reproduce the quantized model's
/// pre-quantization fp32 answers bitwise.
TEST(ModelRegistryTest, QuantizeInPlaceMixedPrecision) {
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  FittedModel cls = MakeFitted("classification");
  FittedModel fcst = MakeFitted("forecasting");
  const Tensor cls_row = ops::Slice(cls.data, 0, 0, 2);
  const Tensor fcst_row = ops::Slice(fcst.data, 0, 0, 2);

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("cls", std::move(cls.pipeline)).ok());
  ASSERT_TRUE(registry.Add("fcst", std::move(fcst.pipeline)).ok());
  auto cls_handle = registry.Get("cls");
  auto fcst_handle = registry.Get("fcst");
  ASSERT_TRUE(cls_handle.ok() && fcst_handle.ok());
  EXPECT_EQ((*cls_handle)->precision(), "fp32");
  EXPECT_EQ((*fcst_handle)->precision(), "fp32");

  auto cls_fp32 = (*cls_handle)->Predict(cls_row);
  auto fcst_fp32 = (*fcst_handle)->Predict(fcst_row);
  ASSERT_TRUE(cls_fp32.ok() && fcst_fp32.ok());

  EXPECT_EQ(registry.Quantize("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(registry.Quantize("fcst").ok());
  EXPECT_EQ((*fcst_handle)->precision(), "int8");
  EXPECT_EQ((*cls_handle)->precision(), "fp32") << "wrong model quantized";

  // The fp32 neighbour is byte-for-byte unaffected.
  auto cls_again = (*cls_handle)->Predict(cls_row);
  ASSERT_TRUE(cls_again.ok());
  ExpectBitwiseEqual(*cls_again, *cls_fp32, "fp32 neighbour");

  // The quantized model answers (validly, but differently), and the env
  // escape hatch recovers its fp32 answers bitwise.
  auto fcst_int8 = (*fcst_handle)->Predict(fcst_row);
  ASSERT_TRUE(fcst_int8.ok());
  {
    Int8EnvGuard off("off");
    auto oracle = (*fcst_handle)->Predict(fcst_row);
    ASSERT_TRUE(oracle.ok());
    ExpectBitwiseEqual(*oracle, *fcst_fp32, "off-oracle");
  }
}

/// Mixed-precision serving through the micro-batcher: an int8 model and an
/// fp32 model take interleaved traffic on the same batcher, and each row
/// stays bitwise identical to its model's direct sequential Predict.
TEST(MicroBatcherTest, MixedPrecisionModelsServeConcurrently) {
  ThreadCountGuard guard;
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  base::SetNumThreads(1);
  FittedModel cls = MakeFitted("classification");
  FittedModel fcst = MakeFitted("forecasting");
  const Tensor cls_data = cls.data;
  const Tensor fcst_data = fcst.data;

  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("cls", std::move(cls.pipeline)).ok());
  ASSERT_TRUE(registry.Add("fcst", std::move(fcst.pipeline)).ok());
  ASSERT_TRUE(registry.Quantize("fcst").ok());

  auto cls_handle = registry.Get("cls");
  auto fcst_handle = registry.Get("fcst");
  ASSERT_TRUE(cls_handle.ok() && fcst_handle.ok());
  const int64_t n = 8;
  std::vector<core::TaskResult> cls_ref, fcst_ref;
  for (int64_t i = 0; i < n; ++i) {
    auto a = (*cls_handle)->Predict(ops::Slice(cls_data, 0, i, 1));
    auto b = (*fcst_handle)->Predict(ops::Slice(fcst_data, 0, i, 1));
    ASSERT_TRUE(a.ok() && b.ok());
    cls_ref.push_back(std::move(*a));
    fcst_ref.push_back(std::move(*b));
  }

  MicroBatcher::Options options;
  options.max_batch_size = 4;
  options.max_delay_ms = 5.0;
  MicroBatcher batcher(&registry, options);
  std::vector<std::future<Result<core::TaskResult>>> cls_fut, fcst_fut;
  for (int64_t i = 0; i < n; ++i) {
    cls_fut.push_back(batcher.Submit("cls", ops::Slice(cls_data, 0, i, 1)));
    fcst_fut.push_back(
        batcher.Submit("fcst", ops::Slice(fcst_data, 0, i, 1)));
  }
  for (int64_t i = 0; i < n; ++i) {
    auto a = cls_fut[static_cast<size_t>(i)].get();
    auto b = fcst_fut[static_cast<size_t>(i)].get();
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectBitwiseEqual(*a, cls_ref[static_cast<size_t>(i)],
                       "fp32 row " + std::to_string(i));
    ExpectBitwiseEqual(*b, fcst_ref[static_cast<size_t>(i)],
                       "int8 row " + std::to_string(i));
  }
}

/// The "quantize" control op over the JSON-line protocol: barrier
/// semantics, precision in the response, and precision labels in both
/// "list" entries and the per-model "stats" block.
TEST(JsonLineServerTest, QuantizeOpFlipsPrecisionInListAndStats) {
  PlanModeGuard planned(nullptr);
  Int8EnvGuard on(nullptr);
  FittedModel fitted = MakeFitted("classification");
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", std::move(fitted.pipeline)).ok());

  std::ostringstream input;
  input << "{\"op\": \"list\"}\n"
        << "{\"op\": \"quantize\", \"model\": \"m\"}\n"
        << "{\"op\": \"quantize\", \"model\": \"ghost\"}\n"
        << "{\"op\": \"list\"}\n"
        << "{\"op\": \"stats\"}\n";

  JsonLineServer::Options options;
  options.batcher.max_delay_ms = 0.0;
  JsonLineServer server(&registry, options);
  std::istringstream in(input.str());
  std::ostringstream out;
  EXPECT_EQ(server.Run(in, out), 0);

  std::istringstream responses(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(responses, line));  // list #1
  auto list1 = json::Parse(line);
  ASSERT_TRUE(list1.ok() && list1->at("ok").AsBool()) << line;
  EXPECT_EQ(list1->at("models")[0].at("precision").AsString(), "fp32");

  ASSERT_TRUE(std::getline(responses, line));  // quantize m
  auto quant = json::Parse(line);
  ASSERT_TRUE(quant.ok() && quant->at("ok").AsBool()) << line;
  EXPECT_EQ(quant->at("model").AsString(), "m");
  EXPECT_EQ(quant->at("precision").AsString(), "int8");

  ASSERT_TRUE(std::getline(responses, line));  // quantize ghost -> error
  auto ghost = json::Parse(line);
  ASSERT_TRUE(ghost.ok()) << line;
  EXPECT_FALSE(ghost->at("ok").AsBool()) << line;

  ASSERT_TRUE(std::getline(responses, line));  // list #2
  auto list2 = json::Parse(line);
  ASSERT_TRUE(list2.ok() && list2->at("ok").AsBool()) << line;
  EXPECT_EQ(list2->at("models")[0].at("precision").AsString(), "int8");

  ASSERT_TRUE(std::getline(responses, line));  // stats
  auto stats = json::Parse(line);
  ASSERT_TRUE(stats.ok() && stats->at("ok").AsBool()) << line;
  EXPECT_EQ(stats->at("plan").at("models").at("m").at("precision").AsString(),
            "int8");
}

}  // namespace
}  // namespace units::serve
