// Loopback integration tests for the TCP serving transport: concurrent
// clients with interleaved predicts against two resident models (per-
// connection response order and payload correctness), slow-reader
// backpressure, half-closed connections, mid-line disconnects without fd
// leaks, oversized-line resynchronization, idle timeouts, and graceful
// drain. Built as its own executable so the ThreadSanitizer CI job can run
// the full event-loop + batcher concurrency directly.

#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"
#include "serve/model_registry.h"
#include "serve_test_util.h"
#include "socket_test_util.h"
#include "tensor/tensor_ops.h"

namespace units::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// One predict request line for `model` carrying `row` ([1, D, T]) and `id`.
std::string PredictLine(const std::string& model, const Tensor& row,
                        int64_t id) {
  const int64_t channels = row.dim(1);
  const int64_t length = row.dim(2);
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"op\": \"predict\", \"model\": \"" << model << "\", \"id\": " << id
     << ", \"values\": [";
  for (int64_t d = 0; d < channels; ++d) {
    os << (d == 0 ? "[" : ", [");
    for (int64_t t = 0; t < length; ++t) {
      os << (t == 0 ? "" : ", ") << row[d * length + t];
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

/// Expected per-model answer, captured from a direct pipeline Predict.
struct Reference {
  Tensor row;
  std::vector<int64_t> labels;
  std::vector<float> predictions;
};

/// Parses a response line and checks it against the model's reference.
void ExpectPredictResponse(const std::string& line, const std::string& model,
                           int64_t id, const Reference& ref) {
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  ASSERT_TRUE(parsed->is_object()) << line;
  ASSERT_TRUE(parsed->Contains("ok")) << line;
  ASSERT_TRUE(parsed->at("ok").AsBool()) << line;
  EXPECT_EQ(parsed->at("id").AsInt(), id) << line;
  EXPECT_EQ(parsed->at("model").AsString(), model) << line;
  const auto labels = parsed->at("labels").ToInts();
  EXPECT_EQ(labels, ref.labels) << line;
  const auto data = parsed->at("predictions").at("data").ToFloats();
  ASSERT_EQ(data.size(), ref.predictions.size()) << line;
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], ref.predictions[i], 1e-6f) << line;
  }
}

/// Open descriptor count for this process (tests run the server in-process,
/// so a leaked connection fd shows up here).
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (::readdir(dir) != nullptr) {
    ++count;
  }
  ::closedir(dir);
  return count;
}

/// Two resident classification models with distinct weights, fitted once
/// for the whole suite; their references are the correctness oracle.
class SocketServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new ModelRegistry();
    refs_ = new std::map<std::string, Reference>();
    for (const auto& [name, seed] :
         std::vector<std::pair<std::string, uint64_t>>{{"a", 7}, {"b", 21}}) {
      FittedModel fitted = MakeFitted("classification", seed);
      Reference ref;
      ref.row = ops::Slice(fitted.data, 0, 0, 1);
      auto result = fitted.pipeline->Predict(ref.row);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ref.labels = result->labels;
      for (int64_t i = 0; i < result->predictions.numel(); ++i) {
        ref.predictions.push_back(result->predictions[i]);
      }
      (*refs_)[name] = std::move(ref);
      ASSERT_TRUE(registry_->Add(name, std::move(fitted.pipeline)).ok());
    }
  }

  static SocketServer::Options Defaults() {
    SocketServer::Options options;
    options.port = 0;  // ephemeral
    options.batcher.max_delay_ms = 1.0;
    return options;
  }

  static const Reference& Ref(const std::string& model) {
    return refs_->at(model);
  }

  static ModelRegistry* registry_;
  static std::map<std::string, Reference>* refs_;
};

ModelRegistry* SocketServerTest::registry_ = nullptr;
std::map<std::string, Reference>* SocketServerTest::refs_ = nullptr;

TEST_F(SocketServerTest, ConcurrentClientsInterleaveTwoModels) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      if (!client.connected()) {
        failures[c] = "connect failed";
        return;
      }
      // Pipeline all requests, alternating models, before reading anything:
      // responses must still come back in request order.
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string model = (c + i) % 2 == 0 ? "a" : "b";
        const int64_t id = c * 1000 + i;
        if (!client.SendLine(PredictLine(model, Ref(model).row, id))) {
          failures[c] = "send failed";
          return;
        }
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::string line;
        if (!client.ReadLine(&line)) {
          failures[c] = "missing response " + std::to_string(i);
          return;
        }
        const std::string model = (c + i) % 2 == 0 ? "a" : "b";
        ExpectPredictResponse(line, model, c * 1000 + i, Ref(model));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, SlowReaderGetsEveryResponseInOrder) {
  auto options = Defaults();
  // A cap far below the workload's response volume, so the harvest gate
  // (and with it the POLLIN gate) must engage and then recover.
  options.max_write_buffer_bytes = 1024;
  options.admission.max_queue = 512;
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());

  constexpr int kRequests = 200;
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, i)));
  }
  // Stay a slow reader long enough for the write buffer to hit its cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    ExpectPredictResponse(line, "a", i, Ref("a"));
  }
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, HalfCloseStillAnswersThenCloses) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine(PredictLine("b", Ref("b").row, i)));
  }
  client.CloseWrite();  // half-close: done sending, still reading
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    ExpectPredictResponse(line, "b", i, Ref("b"));
  }
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, MidLineDisconnectCleansUpWithoutLeaks) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  // Let the first accept (if any startup fds are lazily created) settle
  // before taking the baseline.
  {
    TestClient warmup(harness.port());
    ASSERT_TRUE(warmup.connected());
    ASSERT_TRUE(warmup.SendLine(PredictLine("a", Ref("a").row, 0)));
    std::string line;
    ASSERT_TRUE(warmup.ReadLine(&line));
    warmup.CloseWrite();
    ASSERT_TRUE(warmup.WaitForEof());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  // Ten clients die mid-request-line; the server must reap every fd.
  for (int i = 0; i < 10; ++i) {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw("{\"op\": \"pred"));  // no newline
    client.Close();  // hard close mid-line
  }
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  int fds = -1;
  while (Clock::now() < deadline) {
    fds = CountOpenFds();
    if (fds == baseline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(fds, baseline) << "connection fds leaked after disconnects";

  // The server must still be serving after the carnage.
  TestClient survivor(harness.port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_TRUE(survivor.SendLine(PredictLine("a", Ref("a").row, 42)));
  std::string line;
  ASSERT_TRUE(survivor.ReadLine(&line));
  ExpectPredictResponse(line, "a", 42, Ref("a"));
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, OversizedLineGetsErrorAndResynchronizes) {
  auto options = Defaults();
  // Big enough for this suite's predict lines, far below the garbage below.
  options.session.max_line_bytes = 4096;
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  // An unterminated 16 KiB line must be answered before its newline even
  // arrives, and the tail must be discarded so the stream resyncs.
  ASSERT_TRUE(client.SendRaw(std::string(16384, 'x')));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->at("ok").AsBool()) << line;
  EXPECT_NE(parsed->at("error").AsString().find("exceeds"),
            std::string::npos)
      << line;

  ASSERT_TRUE(client.SendRaw("still the same oversized line\n"));
  ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, 7)));
  ASSERT_TRUE(client.ReadLine(&line));
  ExpectPredictResponse(line, "a", 7, Ref("a"));
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, IdleTimeoutClosesQuiescentConnection) {
  auto options = Defaults();
  options.idle_timeout_s = 0.3;
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, 1)));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ExpectPredictResponse(line, "a", 1, Ref("a"));
  // Quiescent now; the server should hang up within the idle timeout
  // (plus poll granularity), well inside this deadline.
  EXPECT_TRUE(client.WaitForEof(5.0));
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, QuitEndsSessionAfterFlushingResponses) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(PredictLine("b", Ref("b").row, 3)));
  ASSERT_TRUE(client.SendLine("{\"op\": \"quit\"}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ExpectPredictResponse(line, "b", 3, Ref("b"));
  ASSERT_TRUE(client.ReadLine(&line));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed->at("ok").AsBool()) << line;
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, GracefulDrainAnswersAdmittedRequests) {
  auto options = Defaults();
  options.batcher.max_delay_ms = 500.0;  // requests linger in the batcher
  ServerHarness harness(registry_, options);
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, i)));
  }
  // Give the event loop a beat to read and admit the burst, then drain
  // while the requests are still waiting out the flush delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  harness.server()->RequestDrain();

  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    ExpectPredictResponse(line, "a", i, Ref("a"));
  }
  EXPECT_TRUE(client.WaitForEof());
  EXPECT_EQ(harness.Stop(), 0);
}

TEST_F(SocketServerTest, SignalStormDoesNotLoseOrCorruptResponses) {
  // EINTR-audit regression (serve/net_util.h): pepper the whole process
  // with SIGUSR1 — handler installed *without* SA_RESTART so read/write/
  // poll/send actually return EINTR — while a large pipelined transfer
  // runs through the event loop. Every response must still arrive intact
  // and in order.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load(std::memory_order_relaxed)) {
      ::kill(::getpid(), SIGUSR1);  // delivered to an arbitrary thread
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Run the transfer in a callee so a failed ASSERT still falls through
  // to stopping the storm thread below.
  constexpr int kRequests = 150;
  const auto run_transfer = [&]() {
    TestClient client(harness.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, i)))
          << "send " << i;
    }
    for (int i = 0; i < kRequests; ++i) {
      std::string line;
      ASSERT_TRUE(client.ReadLine(&line, 60.0)) << "response " << i;
      ExpectPredictResponse(line, "a", i, Ref("a"));
    }
  };
  run_transfer();
  storming.store(false);
  storm.join();
  EXPECT_EQ(harness.Stop(), 0);
  ::sigaction(SIGUSR1, &old, nullptr);
}

TEST_F(SocketServerTest, StatsOverSocketReportAdmissionCounters) {
  ServerHarness harness(registry_, Defaults());
  ASSERT_TRUE(harness.Start());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(PredictLine("a", Ref("a").row, 11)));
  ASSERT_TRUE(client.SendLine("{\"op\": \"stats\"}"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ExpectPredictResponse(line, "a", 11, Ref("a"));
  ASSERT_TRUE(client.ReadLine(&line));
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  ASSERT_TRUE(parsed->at("ok").AsBool()) << line;
  // The stats barrier runs after the predict resolved, so "accepted" has
  // a deterministic value here.
  const auto& admission = parsed->at("stats").at("admission");
  EXPECT_EQ(admission.at("accepted").AsInt(), 1);
  EXPECT_EQ(admission.at("shed").AsInt(), 0);
  EXPECT_EQ(admission.at("timed_out").AsInt(), 0);
  EXPECT_EQ(harness.Stop(), 0);
}

}  // namespace
}  // namespace units::serve
