#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace units::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, LoadLongFormat) {
  const std::string path = TempPath("series.csv");
  WriteFile(path, "1.0,10.0\n2.0,20.0\n3.0,30.0\n");
  auto result = LoadCsvSeries(path, /*has_header=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Tensor& s = *result;
  EXPECT_EQ(s.shape(), (Shape{2, 3}));  // 2 channels, 3 timesteps
  EXPECT_EQ(s.At({0, 1}), 2.0f);
  EXPECT_EQ(s.At({1, 2}), 30.0f);
}

TEST_F(CsvTest, HeaderSkipped) {
  const std::string path = TempPath("header.csv");
  WriteFile(path, "cpu,mem\n1,2\n3,4\n");
  auto result = LoadCsvSeries(path, /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shape(), (Shape{2, 2}));
}

TEST_F(CsvTest, RejectsMissingFile) {
  auto result = LoadCsvSeries(TempPath("nope.csv"), false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RejectsBadFloat) {
  const std::string path = TempPath("bad.csv");
  WriteFile(path, "1.0,oops\n");
  EXPECT_FALSE(LoadCsvSeries(path, false).ok());
}

TEST_F(CsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2\n3\n");
  EXPECT_FALSE(LoadCsvSeries(path, false).ok());
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "1,2\n\n3,4\n");
  auto result = LoadCsvSeries(path, false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dim(1), 2);
}

TEST_F(CsvTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  Tensor s = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(SaveCsvSeries(path, s, {"a", "b"}).ok());
  auto loaded = LoadCsvSeries(path, /*has_header=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(ops::AllClose(*loaded, s));
}

TEST_F(CsvTest, UcrStyleLoad) {
  const std::string path = TempPath("ucr.csv");
  WriteFile(path, "3,0.1,0.2,0.3\n7,1.1,1.2,1.3\n3,2.1,2.2,2.3\n");
  auto result = LoadUcrStyleCsv(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TimeSeriesDataset& ds = *result;
  EXPECT_EQ(ds.num_samples(), 3);
  EXPECT_EQ(ds.num_channels(), 1);
  EXPECT_EQ(ds.length(), 3);
  // Labels remapped by first appearance: 3 -> 0, 7 -> 1.
  EXPECT_EQ(ds.labels(), (std::vector<int64_t>{0, 1, 0}));
  EXPECT_NEAR(ds.values().At({1, 0, 2}), 1.3f, 1e-6);
}

TEST_F(CsvTest, UcrRoundTrip) {
  const std::string path = TempPath("ucr_rt.csv");
  Tensor values = Tensor::FromVector({2, 1, 3}, {1, 2, 3, 4, 5, 6});
  TimeSeriesDataset ds(std::move(values), {0, 1});
  ASSERT_TRUE(SaveUcrStyleCsv(path, ds).ok());
  auto loaded = LoadUcrStyleCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->labels(), ds.labels());
  EXPECT_TRUE(ops::AllClose(loaded->values(), ds.values()));
}

TEST_F(CsvTest, UcrRejectsLabelOnlyRow) {
  const std::string path = TempPath("ucr_bad.csv");
  WriteFile(path, "3\n");
  EXPECT_FALSE(LoadUcrStyleCsv(path).ok());
}

TEST_F(CsvTest, SaveUcrRejectsMultivariate) {
  TimeSeriesDataset ds(Tensor::Zeros({2, 3, 4}), {0, 1});
  EXPECT_FALSE(SaveUcrStyleCsv(TempPath("x.csv"), ds).ok());
}

}  // namespace
}  // namespace units::data
