#include "cluster/kmeans.h"

#include <map>

#include <gtest/gtest.h>

namespace units::cluster {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
Tensor MakeBlobs(int64_t per_cluster, Rng* rng,
                 std::vector<int64_t>* truth = nullptr) {
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Tensor points = Tensor::Zeros({3 * per_cluster, 2});
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < per_cluster; ++i) {
      const int64_t row = c * per_cluster + i;
      points.At({row, 0}) =
          centers[c][0] + static_cast<float>(rng->Normal(0.0, 0.5));
      points.At({row, 1}) =
          centers[c][1] + static_cast<float>(rng->Normal(0.0, 0.5));
      if (truth != nullptr) {
        truth->push_back(c);
      }
    }
  }
  return points;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  std::vector<int64_t> truth;
  Tensor points = MakeBlobs(30, &rng, &truth);
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto result = KMeans(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  // Each predicted cluster must map to exactly one true blob.
  std::map<int64_t, std::map<int64_t, int64_t>> confusion;
  for (size_t i = 0; i < truth.size(); ++i) {
    ++confusion[result->assignments[i]][truth[i]];
  }
  for (const auto& [pred, per_true] : confusion) {
    EXPECT_EQ(per_true.size(), 1u) << "cluster " << pred << " is mixed";
  }
}

TEST(KMeansTest, CentroidsNearTrueCenters) {
  Rng rng(2);
  Tensor points = MakeBlobs(50, &rng);
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto result = KMeans(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  // Every centroid is within 1.0 of some true center.
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int64_t c = 0; c < 3; ++c) {
    float best = 1e9f;
    for (const auto& center : centers) {
      const float dx = result->centroids.At({c, 0}) - center[0];
      const float dy = result->centroids.At({c, 1}) - center[1];
      best = std::min(best, dx * dx + dy * dy);
    }
    EXPECT_LT(best, 1.0f);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(3);
  Tensor points = MakeBlobs(40, &rng);
  auto run = [&](int64_t k) {
    KMeansOptions opts;
    opts.num_clusters = k;
    return KMeans(points, opts, &rng)->inertia;
  };
  const float inertia1 = run(1);
  const float inertia3 = run(3);
  EXPECT_LT(inertia3, inertia1 * 0.2f);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng rng(4);
  Tensor points = Tensor::FromVector({4, 1}, {1, 2, 3, 4});
  KMeansOptions opts;
  opts.num_clusters = 1;
  auto result = KMeans(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids[0], 2.5f, 1e-5);
}

TEST(KMeansTest, RejectsInvalidInputs) {
  Rng rng(5);
  KMeansOptions opts;
  opts.num_clusters = 5;
  Tensor too_few = Tensor::Zeros({3, 2});
  EXPECT_FALSE(KMeans(too_few, opts, &rng).ok());
  Tensor wrong_rank = Tensor::Zeros({3, 2, 2});
  opts.num_clusters = 2;
  EXPECT_FALSE(KMeans(wrong_rank, opts, &rng).ok());
}

TEST(KMeansTest, KEqualsNPerfectFit) {
  Rng rng(6);
  Tensor points = Tensor::FromVector({3, 1}, {0, 5, 10});
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto result = KMeans(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0f, 1e-6);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Rng rng(7);
  Tensor points = Tensor::Ones({10, 3});
  KMeansOptions opts;
  opts.num_clusters = 2;
  auto result = KMeans(points, opts, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0f, 1e-6);
}

TEST(AssignToCentroidsTest, NearestWins) {
  Tensor centroids = Tensor::FromVector({2, 1}, {0.0f, 10.0f});
  Tensor points = Tensor::FromVector({3, 1}, {1.0f, 9.0f, 4.9f});
  const auto assign = AssignToCentroids(points, centroids);
  EXPECT_EQ(assign, (std::vector<int64_t>{0, 1, 0}));
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  Rng rng_a(8);
  Rng rng_b(8);
  Tensor points = MakeBlobs(20, &rng_a);
  KMeansOptions one;
  one.num_clusters = 3;
  one.num_restarts = 1;
  KMeansOptions many = one;
  many.num_restarts = 5;
  Rng r1(9);
  Rng r2(9);
  const float inertia_one = KMeans(points, one, &r1)->inertia;
  const float inertia_many = KMeans(points, many, &r2)->inertia;
  EXPECT_LE(inertia_many, inertia_one + 1e-3f);
}

}  // namespace
}  // namespace units::cluster
