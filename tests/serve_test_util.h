#ifndef UNITS_TESTS_SERVE_TEST_UTIL_H_
#define UNITS_TESTS_SERVE_TEST_UTIL_H_

// Shared fixtures for the serving test binaries (test_serve,
// test_admission, test_socket_server): toy fitted pipelines, bitwise
// result comparison, and a Linux thread counter for the bounded-threads
// assertions.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "tensor/tensor_ops.h"

namespace units::serve {

/// Scoped UNITS_PLAN override (nullptr = unset, i.e. the planned default);
/// restores the previous value on destruction. Tests that assert behavior
/// of one specific execution substrate pin it with this guard so they hold
/// under the CI leg that exports UNITS_PLAN=dynamic for the whole suite.
class PlanModeGuard {
 public:
  explicit PlanModeGuard(const char* mode) {
    const char* prev = std::getenv("UNITS_PLAN");
    if (prev != nullptr) {
      saved_ = prev;
    }
    Apply(mode);
  }
  ~PlanModeGuard() { Apply(saved_.empty() ? nullptr : saved_.c_str()); }

 private:
  static void Apply(const char* mode) {
    if (mode != nullptr) {
      setenv("UNITS_PLAN", mode, 1);
    } else {
      unsetenv("UNITS_PLAN");
    }
  }
  std::string saved_;
};

inline core::UnitsPipeline::Config TinyConfig(const std::string& task,
                                              uint64_t seed = 7) {
  core::UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = core::ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 8);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("batch_size", 8);
  cfg.seed = seed;
  return cfg;
}

inline data::TimeSeriesDataset TinyClassData() {
  data::ClassificationOpts opts;
  opts.num_samples = 12;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 5;
  return data::MakeClassificationDataset(opts);
}

inline data::TimeSeriesDataset TinyForecastData() {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.total_length = 300;
  opts.seed = 9;
  return data::MakeForecastDataset(opts, 32, 16, 8);
}

inline data::TimeSeriesDataset TinyAnomalyData() {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 300;
  opts.seed = 11;
  return data::TimeSeriesDataset(
      data::SlidingWindows(data::MakeCleanSeries(opts), 32, 16));
}

/// A fitted pipeline for `task`, plus data it can serve, at toy scale.
/// Different `seed`s yield different weights (distinct "models").
struct FittedModel {
  std::unique_ptr<core::UnitsPipeline> pipeline;
  Tensor data;  // [N, 2, 32]
};

inline FittedModel MakeFitted(const std::string& task, uint64_t seed = 7) {
  auto cfg = TinyConfig(task, seed);
  data::TimeSeriesDataset dataset = TinyClassData();
  if (task == "clustering") {
    cfg.finetune_params.SetInt("num_clusters", 2);
    cfg.finetune_params.SetInt("cluster_finetune_epochs", 0);
  } else if (task == "forecasting" || task == "imputation") {
    dataset = TinyForecastData();
  } else if (task == "anomaly_detection") {
    dataset = TinyAnomalyData();
  }
  auto pipeline = core::UnitsPipeline::Create(cfg, 2);
  EXPECT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->FineTune(dataset).ok());
  return FittedModel{std::move(*pipeline), dataset.values()};
}

inline void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                               const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

inline void ExpectBitwiseEqual(const core::TaskResult& a,
                               const core::TaskResult& b,
                               const std::string& what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  ExpectBitwiseEqual(a.predictions, b.predictions, what + " predictions");
  ExpectBitwiseEqual(a.scores, b.scores, what + " scores");
}

/// Live thread count of this process (Linux /proc; -1 elsewhere).
inline int CountProcessThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream fields(line.substr(8));
      int n = -1;
      fields >> n;
      return n;
    }
  }
  return -1;
}

}  // namespace units::serve

#endif  // UNITS_TESTS_SERVE_TEST_UTIL_H_
