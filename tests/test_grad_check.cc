// Property-based finite-difference verification of every differentiable op:
// for each named op a random input is drawn and the analytic gradient of a
// scalar-valued wrapper is compared against central differences.

#include "autograd/grad_check.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "nn/attention.h"
#include "nn/heads.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace units::autograd {
namespace {

namespace ag = ::units::autograd;

struct OpCase {
  std::string name;
  // Builds a scalar from the inputs.
  std::function<Variable(const std::vector<Variable>&)> fn;
  // Input shapes; values drawn N(0,1) unless positive-only.
  std::vector<Shape> shapes;
  bool positive_inputs = false;
};

/// Wraps any tensor-valued expression into a scalar via a fixed random
/// weighting, so gradient checking exercises off-diagonal structure.
std::function<Variable(const std::vector<Variable>&)> Weighted(
    std::function<Variable(const std::vector<Variable>&)> fn, uint64_t seed) {
  return [fn = std::move(fn), seed](const std::vector<Variable>& inputs) {
    Variable out = fn(inputs);
    Rng rng(seed);
    Tensor w = Tensor::RandNormal(out.shape(), &rng);
    return ag::SumAll(ag::Mul(out, ag::Constant(w)));
  };
}

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& c = GetParam();
  Rng rng(1234);
  std::vector<Variable> inputs;
  for (const Shape& shape : c.shapes) {
    Tensor t = c.positive_inputs
                   ? Tensor::RandUniform(shape, &rng, 0.5f, 2.0f)
                   : Tensor::RandNormal(shape, &rng);
    inputs.emplace_back(std::move(t), /*requires_grad=*/true);
  }
  const GradCheckResult result = CheckGradients(c.fn, std::move(inputs));
  EXPECT_TRUE(result.passed) << c.name << ": " << result.detail
                             << " (max rel err " << result.max_rel_error
                             << ")";
}

std::vector<OpCase> MakeCases() {
  std::vector<OpCase> cases;
  auto add = [&](std::string name,
                 std::function<Variable(const std::vector<Variable>&)> fn,
                 std::vector<Shape> shapes, bool positive = false) {
    cases.push_back({std::move(name),
                     Weighted(std::move(fn), 99 + cases.size()),
                     std::move(shapes), positive});
  };

  add("add", [](const auto& v) { return ag::Add(v[0], v[1]); },
      {{2, 3}, {2, 3}});
  add("add_broadcast", [](const auto& v) { return ag::Add(v[0], v[1]); },
      {{2, 3}, {3}});
  add("sub", [](const auto& v) { return ag::Sub(v[0], v[1]); },
      {{2, 2}, {2, 2}});
  add("mul", [](const auto& v) { return ag::Mul(v[0], v[1]); },
      {{2, 3}, {2, 3}});
  add("mul_broadcast", [](const auto& v) { return ag::Mul(v[0], v[1]); },
      {{2, 1, 3}, {2, 3}});
  add("div", [](const auto& v) { return ag::Div(v[0], v[1]); },
      {{2, 2}, {2, 2}}, /*positive=*/true);
  add("neg", [](const auto& v) { return ag::Neg(v[0]); }, {{3}});
  add("add_scalar", [](const auto& v) { return ag::AddScalar(v[0], 2.5f); },
      {{3}});
  add("mul_scalar", [](const auto& v) { return ag::MulScalar(v[0], -1.5f); },
      {{3}});
  add("pow_scalar", [](const auto& v) { return ag::PowScalar(v[0], 3.0f); },
      {{3}}, /*positive=*/true);
  add("matmul", [](const auto& v) { return ag::MatMul(v[0], v[1]); },
      {{2, 3}, {3, 4}});
  // Shapes that cross the GEMM micro-tile boundaries (kMR=6 rows, kNR=16
  // cols), so the blocked kernel's packed edge tiles are exercised in both
  // the forward and the transposed backward products.
  add("matmul_tile_edges",
      [](const auto& v) { return ag::MatMul(v[0], v[1]); }, {{7, 5}, {5, 17}});
  add("linear_gemm",
      [](const auto& v) { return ag::Add(ag::MatMul(v[0], v[1]), v[2]); },
      {{7, 9}, {9, 17}, {17}});
  add("batched_matmul",
      [](const auto& v) { return ag::BatchedMatMul(v[0], v[1]); },
      {{2, 2, 3}, {2, 3, 2}});
  // The attention projection chain: scaled scores -> softmax -> context,
  // all through the blocked BatchedGemm.
  add("attention_proj_gemm",
      [](const auto& v) {
        Variable scores = ag::MulScalar(
            ag::BatchedMatMul(v[0], ag::Transpose(v[1], 1, 2)), 0.5f);
        Variable attn = ag::Softmax(scores, 2);
        return ag::BatchedMatMul(attn, v[2]);
      },
      {{2, 7, 3}, {2, 7, 3}, {2, 7, 3}});
  add("transpose",
      [](const auto& v) { return ag::Transpose(v[0], 0, 1); }, {{2, 3}});
  add("transpose_inner",
      [](const auto& v) { return ag::Transpose(v[0], 1, 2); }, {{2, 3, 4}});
  add("reshape",
      [](const auto& v) { return ag::Reshape(v[0], {6}); }, {{2, 3}});
  add("gelu", [](const auto& v) { return ag::Gelu(v[0]); }, {{2, 3}});
  add("leaky_relu", [](const auto& v) { return ag::LeakyRelu(v[0], 0.1f); },
      {{4}}, /*positive=*/true);
  add("tanh", [](const auto& v) { return ag::Tanh(v[0]); }, {{2, 3}});
  add("sigmoid", [](const auto& v) { return ag::Sigmoid(v[0]); }, {{2, 3}});
  add("exp", [](const auto& v) { return ag::Exp(v[0]); }, {{2, 2}});
  add("log", [](const auto& v) { return ag::Log(v[0]); }, {{2, 2}},
      /*positive=*/true);
  add("sqrt", [](const auto& v) { return ag::Sqrt(v[0]); }, {{2, 2}},
      /*positive=*/true);
  add("square", [](const auto& v) { return ag::Square(v[0]); }, {{2, 2}});
  add("softmax", [](const auto& v) { return ag::Softmax(v[0], 1); },
      {{2, 4}});
  add("log_softmax", [](const auto& v) { return ag::LogSoftmax(v[0], 1); },
      {{2, 4}});
  // Non-last axis exercises the strided (inner != 1) rows of the fused
  // softmax kernels and their closed-form backwards.
  add("softmax_axis0", [](const auto& v) { return ag::Softmax(v[0], 0); },
      {{3, 4}});
  add("log_softmax_axis0",
      [](const auto& v) { return ag::LogSoftmax(v[0], 0); }, {{3, 4}});
  // Fused attention: forward tiles + the streaming AttentionBackward.
  add("scaled_dot_attention",
      [](const auto& v) {
        return ag::ScaledDotAttention(v[0], v[1], v[2], 0.5f);
      },
      {{2, 7, 3}, {2, 7, 3}, {2, 7, 3}});
  // T = 40 > kAttnRowBlock = 32 crosses a row-block boundary, covering the
  // partial final tile.
  add("scaled_dot_attention_multiblock",
      [](const auto& v) {
        return ag::ScaledDotAttention(v[0], v[1], v[2], 0.6f);
      },
      {{1, 40, 4}, {1, 40, 4}, {1, 40, 4}});
  add("sum_axis", [](const auto& v) { return ag::Sum(v[0], 1); }, {{2, 3}});
  add("sum_keepdim",
      [](const auto& v) { return ag::Sum(v[0], 0, /*keepdim=*/true); },
      {{2, 3}});
  add("mean_axis", [](const auto& v) { return ag::Mean(v[0], -1); },
      {{2, 3}});
  add("slice",
      [](const auto& v) { return ag::Slice(v[0], 1, 1, 2); }, {{2, 4}});
  add("concat",
      [](const auto& v) { return ag::Concat({v[0], v[1]}, 1); },
      {{2, 2}, {2, 3}});
  add("gather_rows",
      [](const auto& v) { return ag::GatherRows(v[0], {1, 1, 0}); },
      {{3, 2}});
  add("conv1d_same",
      [](const auto& v) {
        return ag::Conv1d(v[0], v[1], v[2], 1, 1, 1);
      },
      {{2, 2, 6}, {3, 2, 3}, {3}});
  add("conv1d_dilated_causal",
      [](const auto& v) {
        return ag::Conv1d(v[0], v[1], Variable(), 2, 4, 0);
      },
      {{1, 2, 8}, {2, 2, 3}});
  add("l2_normalize",
      [](const auto& v) { return ag::L2Normalize(v[0], 1); }, {{3, 4}});
  add("max_pool_time",
      [](const auto& v) { return ag::MaxPoolOverTime(v[0]); }, {{2, 2, 5}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

// Scalar losses get their own (non-weighted) checks.

TEST(LossGradCheckTest, CrossEntropy) {
  Rng rng(7);
  Variable logits(Tensor::RandNormal({4, 3}, &rng), true);
  const std::vector<int64_t> targets = {0, 2, 1, 2};
  auto fn = [&targets](const std::vector<Variable>& v) {
    return ag::CrossEntropyLoss(v[0], targets);
  };
  const auto result = CheckGradients(fn, {logits});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(LossGradCheckTest, Mse) {
  Rng rng(8);
  Variable pred(Tensor::RandNormal({3, 2}, &rng), true);
  Tensor target = Tensor::RandNormal({3, 2}, &rng);
  auto fn = [&target](const std::vector<Variable>& v) {
    return ag::MseLoss(v[0], ag::Constant(target));
  };
  EXPECT_TRUE(CheckGradients(fn, {pred}).passed);
}

TEST(LossGradCheckTest, MaskedMse) {
  Rng rng(9);
  Variable pred(Tensor::RandNormal({2, 4}, &rng), true);
  Tensor target = Tensor::RandNormal({2, 4}, &rng);
  Tensor mask = Tensor::FromVector({2, 4}, {1, 0, 1, 1, 0, 0, 1, 0});
  auto fn = [&](const std::vector<Variable>& v) {
    return ag::MaskedMseLoss(v[0], ag::Constant(target), mask);
  };
  EXPECT_TRUE(CheckGradients(fn, {pred}).passed);
}

// Module-level checks: input gradients through real nn layers, so the
// autograd path over the blocked GEMM (not just the raw op) is covered.

TEST(ModuleGradCheckTest, LinearInputGradThroughBlockedGemm) {
  Rng rng(21);
  // 9 -> 17 crosses the kNR=16 micro-tile edge; 7 rows cross kMR=6.
  auto linear = std::make_shared<nn::Linear>(9, 17, &rng);
  auto fn = [linear](const std::vector<Variable>& v) {
    Variable out = linear->Forward(v[0]);
    Rng wrng(55);
    Tensor w = Tensor::RandNormal(out.shape(), &wrng);
    return ag::SumAll(ag::Mul(out, ag::Constant(w)));
  };
  Variable x(Tensor::RandNormal({7, 9}, &rng), /*requires_grad=*/true);
  const auto result = CheckGradients(fn, {x});
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(ModuleGradCheckTest, AttentionInputGradThroughBlockedGemm) {
  Rng rng(22);
  auto attn = std::make_shared<nn::MultiHeadAttention>(/*model_dim=*/6,
                                                       /*num_heads=*/2, &rng,
                                                       /*dropout=*/0.0f);
  attn->SetTraining(false);
  auto fn = [attn](const std::vector<Variable>& v) {
    Variable out = attn->Forward(v[0]);
    Rng wrng(56);
    Tensor w = Tensor::RandNormal(out.shape(), &wrng);
    return ag::SumAll(ag::Mul(out, ag::Constant(w)));
  };
  Variable x(Tensor::RandNormal({2, 5, 6}, &rng), /*requires_grad=*/true);
  const auto result = CheckGradients(fn, {x});
  EXPECT_TRUE(result.passed) << result.detail;
}

// ---------------------------------------------------------------------------
// Engine parity: the parallel ready-queue engine must produce bitwise the
// same gradients as the serial sweep for every differentiable op and for
// losses shaped like the five task heads.
// ---------------------------------------------------------------------------

/// Pins UNITS_BACKWARD + pool size; restores defaults on scope exit.
class ScopedEngine {
 public:
  ScopedEngine(const char* mode, int threads) {
    setenv("UNITS_BACKWARD", mode, /*overwrite=*/1);
    base::SetNumThreads(threads);
  }
  ~ScopedEngine() {
    unsetenv("UNITS_BACKWARD");
    base::SetNumThreads(base::ThreadPool::DefaultNumThreads());
  }
};

/// Rebuilds the op case's inputs and graph from a fixed seed, runs Backward
/// under the given engine, returns every input gradient flattened.
std::vector<std::vector<float>> OpGradsUnder(const OpCase& c, const char* mode,
                                             int threads) {
  ScopedEngine engine(mode, threads);
  Rng rng(1234);
  std::vector<Variable> inputs;
  for (const Shape& shape : c.shapes) {
    Tensor t = c.positive_inputs
                   ? Tensor::RandUniform(shape, &rng, 0.5f, 2.0f)
                   : Tensor::RandNormal(shape, &rng);
    inputs.emplace_back(std::move(t), /*requires_grad=*/true);
  }
  Variable loss = c.fn(inputs);
  loss.Backward();
  std::vector<std::vector<float>> grads;
  grads.reserve(inputs.size());
  for (const Variable& in : inputs) {
    const Tensor& g = in.grad();
    grads.emplace_back(g.data(), g.data() + g.numel());
  }
  return grads;
}

class EngineParityTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(EngineParityTest, SerialAndParallelBitwiseIdentical) {
  const OpCase& c = GetParam();
  const auto baseline = OpGradsUnder(c, "serial", 1);
  const struct {
    const char* mode;
    int threads;
  } kConfigs[] = {{"parallel", 1}, {"parallel", 8}, {"serial", 8}};
  for (const auto& cfg : kConfigs) {
    const auto got = OpGradsUnder(c, cfg.mode, cfg.threads);
    ASSERT_EQ(got.size(), baseline.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), baseline[i].size());
      for (size_t j = 0; j < got[i].size(); ++j) {
        ASSERT_EQ(got[i][j], baseline[i][j])
            << c.name << " mode=" << cfg.mode << " threads=" << cfg.threads
            << " input=" << i << " elem=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, EngineParityTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

// Task-head-shaped losses: full forward+loss graphs matching what the five
// trainers differentiate (heads rebuilt from a fixed seed per run).

using GraphBuilder = std::function<Variable(std::vector<Variable>*)>;

std::vector<std::vector<float>> TaskGradsUnder(const char* mode, int threads,
                                               const GraphBuilder& build) {
  ScopedEngine engine(mode, threads);
  std::vector<Variable> leaves;
  Variable loss = build(&leaves);
  loss.Backward();
  std::vector<std::vector<float>> grads;
  grads.reserve(leaves.size());
  for (const Variable& leaf : leaves) {
    const Tensor& g = leaf.grad();
    grads.emplace_back(g.data(), g.data() + g.numel());
  }
  return grads;
}

void ExpectTaskHeadParity(const GraphBuilder& build) {
  const auto baseline = TaskGradsUnder("serial", 1, build);
  const struct {
    const char* mode;
    int threads;
  } kConfigs[] = {{"parallel", 1}, {"parallel", 8}, {"serial", 8}};
  for (const auto& cfg : kConfigs) {
    const auto got = TaskGradsUnder(cfg.mode, cfg.threads, build);
    ASSERT_EQ(got.size(), baseline.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), baseline[i].size()) << "leaf " << i;
      for (size_t j = 0; j < got[i].size(); ++j) {
        ASSERT_EQ(got[i][j], baseline[i][j])
            << "mode=" << cfg.mode << " threads=" << cfg.threads
            << " leaf=" << i << " elem=" << j;
      }
    }
  }
}

TEST(TaskHeadEngineParityTest, ClassificationHeadCrossEntropy) {
  ExpectTaskHeadParity([](std::vector<Variable>* leaves) {
    Rng rng(301);
    nn::MlpHead head(16, {12}, 4, &rng);
    Variable x(Tensor::RandNormal({6, 16}, &rng), /*requires_grad=*/true);
    leaves->push_back(x);
    for (Variable& p : head.Parameters()) {
      leaves->push_back(p);
    }
    const std::vector<int64_t> targets = {0, 1, 2, 3, 1, 0};
    return ag::CrossEntropyLoss(head.Forward(x), targets);
  });
}

TEST(TaskHeadEngineParityTest, ForecastDecoderMse) {
  ExpectTaskHeadParity([](std::vector<Variable>* leaves) {
    Rng rng(302);
    nn::ForecastDecoder decoder(16, 3, 5, &rng, /*hidden_dim=*/8);
    Variable z(Tensor::RandNormal({4, 16}, &rng), /*requires_grad=*/true);
    leaves->push_back(z);
    for (Variable& p : decoder.Parameters()) {
      leaves->push_back(p);
    }
    Tensor target = Tensor::RandNormal({4, 3, 5}, &rng);
    return ag::MseLoss(decoder.Forward(z), ag::Constant(target));
  });
}

TEST(TaskHeadEngineParityTest, ImputationDecoderMaskedMse) {
  ExpectTaskHeadParity([](std::vector<Variable>* leaves) {
    Rng rng(303);
    nn::ReconstructionDecoder decoder(8, 2, &rng, /*hidden_channels=*/6);
    Variable z(Tensor::RandNormal({3, 8, 10}, &rng), /*requires_grad=*/true);
    leaves->push_back(z);
    for (Variable& p : decoder.Parameters()) {
      leaves->push_back(p);
    }
    Tensor target = Tensor::RandNormal({3, 2, 10}, &rng);
    Tensor mask = Tensor::RandUniform({3, 2, 10}, &rng, 0.0f, 1.0f);
    for (int64_t i = 0; i < mask.numel(); ++i) {
      mask.data()[i] = mask.data()[i] < 0.7f ? 1.0f : 0.0f;
    }
    return ag::MaskedMseLoss(decoder.Forward(z), ag::Constant(target), mask);
  });
}

TEST(TaskHeadEngineParityTest, AnomalyDecoderReconstructionMse) {
  ExpectTaskHeadParity([](std::vector<Variable>* leaves) {
    Rng rng(304);
    nn::ReconstructionDecoder decoder(6, 3, &rng);
    Variable z(Tensor::RandNormal({2, 6, 12}, &rng), /*requires_grad=*/true);
    leaves->push_back(z);
    for (Variable& p : decoder.Parameters()) {
      leaves->push_back(p);
    }
    Tensor target = Tensor::RandNormal({2, 3, 12}, &rng);
    return ag::MseLoss(decoder.Forward(z), ag::Constant(target));
  });
}

TEST(TaskHeadEngineParityTest, ClusteringProjectionCentroidLoss) {
  // The k-means regularizer shape: normalized projected representations
  // pulled toward fixed centroids.
  ExpectTaskHeadParity([](std::vector<Variable>* leaves) {
    Rng rng(305);
    nn::MlpHead projector(16, {}, 8, &rng);
    Variable z(Tensor::RandNormal({5, 16}, &rng), /*requires_grad=*/true);
    leaves->push_back(z);
    for (Variable& p : projector.Parameters()) {
      leaves->push_back(p);
    }
    Tensor centroids = Tensor::RandNormal({5, 8}, &rng);
    Variable proj = ag::L2Normalize(projector.Forward(z), /*axis=*/1);
    return ag::MseLoss(proj, ag::Constant(centroids));
  });
}

TEST(GradCheckHarnessTest, DetectsWrongGradient) {
  // A deliberately wrong "gradient" (custom node whose backward doubles the
  // true gradient) must fail the check — guards the harness itself.
  Rng rng(10);
  Variable x(Tensor::RandNormal({3}, &rng), true);
  auto fn = [](const std::vector<Variable>& v) {
    const Variable& x = v[0];
    Tensor out = ops::Mul(x.data(), x.data());
    Variable wrong = Variable::MakeNode(
        std::move(out), {x}, [x](const Tensor& g) {
          // True backward would be g * 2x; use g * 4x instead.
          Tensor dx = ops::Mul(g, ops::MulScalar(x.data(), 4.0f));
          x.AccumulateGrad(dx);
        });
    return ag::SumAll(wrong);
  };
  EXPECT_FALSE(CheckGradients(fn, {x}).passed);
}

}  // namespace
}  // namespace units::autograd
