#include <cmath>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/heads.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/sequential.h"
#include "nn/tcn.h"
#include "tensor/tensor_ops.h"

namespace units::nn {
namespace {

namespace ag = ::units::autograd;

TEST(LinearTest, OutputShapeAnd2DForward) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Variable x(Tensor::Ones({5, 4}));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(LinearTest, HigherRankInputsFlattenAndRestore) {
  Rng rng(2);
  Linear layer(4, 2, &rng);
  Variable x(Tensor::Ones({3, 7, 4}));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 7, 2}));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer(2, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  Variable zero(Tensor::Zeros({1, 2}));
  Variable y = layer.Forward(zero);
  EXPECT_EQ(y.data()[0], 0.0f);  // no bias => zero input maps to zero
}

TEST(LinearTest, ParametersReceiveGradients) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  Variable x(Tensor::RandNormal({4, 3}, &rng));
  ag::SumAll(layer.Forward(x)).Backward();
  for (const Variable& p : layer.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(Conv1dTest, SamePaddingKeepsLength) {
  Rng rng(5);
  Conv1d conv(2, 4, 3, &rng, 1, ConvPadding::kSame);
  Variable x(Tensor::Zeros({3, 2, 11}));
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{3, 4, 11}));
}

TEST(Conv1dTest, CausalPaddingKeepsLength) {
  Rng rng(6);
  Conv1d conv(1, 1, 3, &rng, 4, ConvPadding::kCausal);
  Variable x(Tensor::Zeros({1, 1, 20}));
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{1, 1, 20}));
}

TEST(Conv1dTest, ValidPaddingShrinks) {
  Rng rng(7);
  Conv1d conv(1, 1, 3, &rng, 1, ConvPadding::kValid);
  Variable x(Tensor::Zeros({1, 1, 10}));
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{1, 1, 8}));
}

TEST(Conv1dTest, CausalityProperty) {
  // Changing a future input must not change past outputs.
  Rng rng(8);
  Conv1d conv(1, 2, 3, &rng, 2, ConvPadding::kCausal);
  Tensor x = Tensor::RandNormal({1, 1, 16}, &rng);
  Variable y1 = conv.Forward(Variable(x));
  Tensor x2 = x.Clone();
  x2.At({0, 0, 10}) += 5.0f;
  Variable y2 = conv.Forward(Variable(x2));
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t = 0; t < 10; ++t) {
      EXPECT_EQ(y1.data().At({0, c, t}), y2.data().At({0, c, t}))
          << "future leak at t=" << t;
    }
  }
}

TEST(LayerNormTest, NormalizesLastDim) {
  LayerNorm norm(8);
  Rng rng(9);
  Variable x(Tensor::RandNormal({4, 8}, &rng, 5.0f, 3.0f));
  Variable y = norm.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int64_t j = 0; j < 8; ++j) {
      mean += y.data().At({i, j});
    }
    mean /= 8.0f;
    for (int64_t j = 0; j < 8; ++j) {
      const float d = y.data().At({i, j}) - mean;
      var += d * d;
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(InstanceNormTest, NormalizesOverTime) {
  InstanceNorm1d norm(2);
  Rng rng(10);
  Variable x(Tensor::RandNormal({3, 2, 32}, &rng, -2.0f, 4.0f));
  Variable y = norm.Forward(x);
  for (int64_t n = 0; n < 3; ++n) {
    for (int64_t c = 0; c < 2; ++c) {
      float mean = 0.0f;
      for (int64_t t = 0; t < 32; ++t) {
        mean += y.data().At({n, c, t});
      }
      EXPECT_NEAR(mean / 32.0f, 0.0f, 1e-4);
    }
  }
}

TEST(BatchNormTest, TrainNormalizesBatch) {
  BatchNorm1d norm(3);
  norm.SetTraining(true);
  Rng rng(11);
  Variable x(Tensor::RandNormal({16, 3}, &rng, 7.0f, 2.0f));
  Variable y = norm.Forward(x);
  for (int64_t c = 0; c < 3; ++c) {
    float mean = 0.0f;
    for (int64_t i = 0; i < 16; ++i) {
      mean += y.data().At({i, c});
    }
    EXPECT_NEAR(mean / 16.0f, 0.0f, 1e-4);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm1d norm(1);
  norm.SetTraining(true);
  Rng rng(12);
  // Feed several batches with mean 10 so running stats adapt.
  for (int step = 0; step < 50; ++step) {
    Variable x(Tensor::RandNormal({32, 1}, &rng, 10.0f, 1.0f));
    norm.Forward(x);
  }
  EXPECT_NEAR(norm.running_mean()[0], 10.0f, 0.5f);
  norm.SetTraining(false);
  Variable probe(Tensor::Full({4, 1}, 10.0f));
  Variable y = norm.Forward(probe);
  EXPECT_NEAR(y.data()[0], 0.0f, 0.2f);
}

TEST(BatchNormTest, Supports3DInput) {
  BatchNorm1d norm(2);
  Rng rng(13);
  Variable x(Tensor::RandNormal({4, 2, 10}, &rng));
  EXPECT_EQ(norm.Forward(x).shape(), (Shape{4, 2, 10}));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(14);
  Dropout dropout(0.5f, &rng);
  dropout.SetTraining(false);
  Tensor x = Tensor::RandNormal({4, 4}, &rng);
  Variable y = dropout.Forward(Variable(x));
  EXPECT_TRUE(ops::AllClose(y.data(), x));
}

TEST(DropoutTest, TrainModeZeroesRoughlyPFraction) {
  Rng rng(15);
  Dropout dropout(0.3f, &rng);
  dropout.SetTraining(true);
  Variable x(Tensor::Ones({100, 100}));
  Variable y = dropout.Forward(x);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
  // Survivors are scaled by 1/(1-p): expectation preserved.
  EXPECT_NEAR(ops::MeanAll(y.data()), 1.0f, 0.03f);
}

TEST(SequentialTest, ChainsModules) {
  Rng rng(16);
  Sequential seq;
  seq.Append(std::make_shared<Linear>(4, 8, &rng));
  seq.Append(std::make_shared<Activation>(ActivationKind::kRelu));
  seq.Append(std::make_shared<Linear>(8, 2, &rng));
  EXPECT_EQ(seq.size(), 3u);
  Variable x(Tensor::Ones({5, 4}));
  EXPECT_EQ(seq.Forward(x).shape(), (Shape{5, 2}));
  EXPECT_EQ(seq.Parameters().size(), 4u);  // two weights, two biases
}

TEST(ModuleTest, NamedParametersHaveDottedPaths) {
  Rng rng(17);
  Sequential seq;
  seq.Append(std::make_shared<Linear>(2, 2, &rng));
  const auto named = seq.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "0.weight");
  EXPECT_EQ(named[1].first, "0.bias");
}

TEST(ModuleTest, NumParametersCounts) {
  Rng rng(18);
  Linear layer(3, 4, &rng);
  EXPECT_EQ(layer.NumParameters(), 3 * 4 + 4);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(19);
  Linear layer(2, 2, &rng);
  Variable x(Tensor::Ones({1, 2}));
  ag::SumAll(layer.Forward(x)).Backward();
  layer.ZeroGrad();
  for (const Variable& p : layer.Parameters()) {
    EXPECT_EQ(ops::SumAll(p.grad()), 0.0f);
  }
}

TEST(ActivationTest, ParseAndName) {
  auto relu = ParseActivation("ReLU");
  ASSERT_TRUE(relu.ok());
  EXPECT_EQ(*relu, ActivationKind::kRelu);
  EXPECT_FALSE(ParseActivation("bogus").ok());
  EXPECT_STREQ(ActivationKindName(ActivationKind::kGelu), "gelu");
}

TEST(TcnTest, PerTimestepOutputShape) {
  Rng rng(20);
  TcnConfig config;
  config.input_channels = 3;
  config.hidden_channels = 8;
  config.repr_channels = 16;
  config.num_blocks = 2;
  TcnEncoder encoder(config, &rng);
  Variable x(Tensor::RandNormal({4, 3, 32}, &rng));
  EXPECT_EQ(encoder.Forward(x).shape(), (Shape{4, 16, 32}));
  EXPECT_EQ(encoder.EncodeSeries(x).shape(), (Shape{4, 16}));
}

TEST(TcnTest, GradientsReachAllParameters) {
  Rng rng(21);
  TcnConfig config;
  config.input_channels = 2;
  config.hidden_channels = 4;
  config.repr_channels = 4;
  config.num_blocks = 2;
  TcnEncoder encoder(config, &rng);
  Variable x(Tensor::RandNormal({2, 2, 16}, &rng));
  ag::SumAll(encoder.EncodeSeries(x)).Backward();
  for (const auto& [name, p] : encoder.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

TEST(TcnTest, TranslationTolerantMaxPool) {
  // A pattern moved in time produces a pooled representation closer to the
  // original than a different pattern does (the invariance max pooling is
  // chosen for).
  Rng rng(22);
  TcnConfig config;
  config.input_channels = 1;
  config.hidden_channels = 8;
  config.repr_channels = 8;
  config.num_blocks = 2;
  TcnEncoder encoder(config, &rng);

  Tensor base = Tensor::Zeros({1, 1, 64});
  Tensor shifted = Tensor::Zeros({1, 1, 64});
  Tensor different = Tensor::RandNormal({1, 1, 64}, &rng, 0.0f, 1.0f);
  for (int64_t t = 0; t < 8; ++t) {
    base.At({0, 0, 10 + t}) = 3.0f;
    shifted.At({0, 0, 40 + t}) = 3.0f;
  }
  ag::NoGradGuard no_grad;
  Tensor zb = encoder.EncodeSeries(Variable(base)).data();
  Tensor zs = encoder.EncodeSeries(Variable(shifted)).data();
  Tensor zd = encoder.EncodeSeries(Variable(different)).data();
  EXPECT_LT(ops::L2Distance(zb, zs), ops::L2Distance(zb, zd));
}

TEST(MlpHeadTest, LinearHeadWhenNoHidden) {
  Rng rng(23);
  MlpHead head(6, {}, 3, &rng);
  EXPECT_EQ(head.Parameters().size(), 2u);
  Variable x(Tensor::Ones({2, 6}));
  EXPECT_EQ(head.Forward(x).shape(), (Shape{2, 3}));
}

TEST(MlpHeadTest, HiddenLayers) {
  Rng rng(24);
  MlpHead head(6, {16, 8}, 3, &rng);
  EXPECT_EQ(head.Parameters().size(), 6u);
  Variable x(Tensor::Ones({2, 6}));
  EXPECT_EQ(head.Forward(x).shape(), (Shape{2, 3}));
}

TEST(ForecastDecoderTest, OutputShape) {
  Rng rng(25);
  ForecastDecoder decoder(10, 2, 12, &rng);
  Variable z(Tensor::RandNormal({5, 10}, &rng));
  EXPECT_EQ(decoder.Forward(z).shape(), (Shape{5, 2, 12}));
}

TEST(ReconstructionDecoderTest, ShapesWithAndWithoutHidden) {
  Rng rng(26);
  ReconstructionDecoder direct(8, 3, &rng);
  ReconstructionDecoder deep(8, 3, &rng, 16);
  Variable z(Tensor::RandNormal({2, 8, 20}, &rng));
  EXPECT_EQ(direct.Forward(z).shape(), (Shape{2, 3, 20}));
  EXPECT_EQ(deep.Forward(z).shape(), (Shape{2, 3, 20}));
  EXPECT_GT(deep.NumParameters(), direct.NumParameters());
}

TEST(InitTest, XavierBounds) {
  Rng rng(27);
  Tensor w = init::XavierUniform({100, 100}, 100, 100, &rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  EXPECT_LE(ops::MaxAll(w), bound);
  EXPECT_GE(ops::MinAll(w), -bound);
  EXPECT_NEAR(ops::MeanAll(w), 0.0f, 0.01f);
}

TEST(NnGradCheckTest, LinearLayer) {
  Rng rng(28);
  auto layer = std::make_shared<Linear>(3, 2, &rng);
  Variable x(Tensor::RandNormal({2, 3}, &rng), true);
  auto fn = [layer](const std::vector<autograd::Variable>& v) {
    return ag::MeanAll(ag::Square(layer->Forward(v[0])));
  };
  EXPECT_TRUE(autograd::CheckGradients(fn, {x}).passed);
}

TEST(NnGradCheckTest, LayerNormInput) {
  Rng rng(29);
  auto norm = std::make_shared<LayerNorm>(4);
  Variable x(Tensor::RandNormal({3, 4}, &rng), true);
  auto fn = [norm](const std::vector<autograd::Variable>& v) {
    return ag::MeanAll(ag::Square(norm->Forward(v[0])));
  };
  EXPECT_TRUE(autograd::CheckGradients(fn, {x}).passed);
}

}  // namespace
}  // namespace units::nn
