#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/fusion.h"
#include "core/pretrain/templates.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace units::core {
namespace {

UnitsPipeline::Config TinyConfig() {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive", "masked_autoregression"};
  cfg.task = "classification";
  cfg.mode = ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 2);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 10);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 3);
  cfg.seed = 21;
  return cfg;
}

data::TimeSeriesDataset TinyData(int64_t n = 20) {
  data::ClassificationOpts opts;
  opts.num_samples = n;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 4;
  return data::MakeClassificationDataset(opts);
}

TEST(PipelineTest, CreateResolvesNamesViaRegistry) {
  auto pipeline = UnitsPipeline::Create(TinyConfig(), 2);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->num_templates(), 2u);
  EXPECT_EQ((*pipeline)->template_at(0)->name(), "whole_series_contrastive");
  EXPECT_EQ((*pipeline)->task()->name(), "classification");
}

TEST(PipelineTest, CreateRejectsUnknownNames) {
  auto cfg = TinyConfig();
  cfg.templates = {"nonexistent"};
  EXPECT_FALSE(UnitsPipeline::Create(cfg, 2).ok());
  cfg = TinyConfig();
  cfg.fusion = "nope";
  EXPECT_FALSE(UnitsPipeline::Create(cfg, 2).ok());
  cfg = TinyConfig();
  cfg.task = "nope";
  EXPECT_FALSE(UnitsPipeline::Create(cfg, 2).ok());
}

TEST(PipelineTest, CreateRejectsEmptyTemplates) {
  auto cfg = TinyConfig();
  cfg.templates.clear();
  EXPECT_FALSE(UnitsPipeline::Create(cfg, 2).ok());
}

TEST(PipelineTest, FusedDimSumsTemplateDims) {
  auto pipeline = UnitsPipeline::Create(TinyConfig(), 2);
  EXPECT_EQ((*pipeline)->fused_dim(), 20);               // 10 + 10
  EXPECT_EQ((*pipeline)->fused_dim_per_timestep(), 20);
}

TEST(PipelineTest, TransformFusedShapeAndFiniteness) {
  auto pipeline = UnitsPipeline::Create(TinyConfig(), 2);
  auto data = TinyData();
  Tensor z = (*pipeline)->TransformFused(data.values());
  EXPECT_EQ(z.shape(), (Shape{20, 20}));
  EXPECT_FALSE(ops::HasNonFinite(z));
  Tensor zt = (*pipeline)->TransformFusedPerTimestep(data.values());
  EXPECT_EQ(zt.shape(), (Shape{20, 20, 32}));
}

TEST(PipelineTest, PretrainPopulatesLossCurves) {
  auto pipeline = UnitsPipeline::Create(TinyConfig(), 2);
  ASSERT_TRUE((*pipeline)->Pretrain(TinyData().values()).ok());
  EXPECT_TRUE((*pipeline)->pretrained());
  const auto curves = (*pipeline)->PretrainLossCurves();
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].size(), 2u);  // 2 epochs
  EXPECT_EQ(curves[1].size(), 2u);
}

TEST(PipelineTest, PretrainOnceFineTuneManyTasks) {
  // The paper's efficiency pitch: one pre-training, several downstream
  // fine-tunings re-using the same encoders.
  auto cfg = TinyConfig();
  cfg.task = "";  // no initial task
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE(pipeline.ok());
  auto data = TinyData();
  ASSERT_TRUE((*pipeline)->Pretrain(data.values()).ok());

  (*pipeline)->SetTask(std::make_unique<ClassificationTask>());
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  ASSERT_TRUE((*pipeline)->Predict(data.values()).ok());

  (*pipeline)->SetTask(std::make_unique<ClusteringTask>(2));
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  ASSERT_TRUE((*pipeline)->Predict(data.values()).ok());
}

TEST(PipelineTest, PredictWithoutTaskFails) {
  auto cfg = TinyConfig();
  cfg.task = "";
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto result = (*pipeline)->Predict(TinyData().values());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, ManualAssemblyWithCustomComponents) {
  UnitsPipeline pipeline(2, 33);
  ParamSet p;
  p.SetInt("hidden_channels", 8);
  p.SetInt("repr_dim", 8);
  p.SetInt("num_blocks", 1);
  p.SetInt("epochs", 1);
  pipeline.AddTemplate(std::make_unique<WholeSeriesContrastive>(p, 2, 1));
  pipeline.SetFusion(std::make_unique<ProjectionFusion>(6));
  pipeline.SetTask(std::make_unique<ClassificationTask>());
  auto data = TinyData();
  ASSERT_TRUE(pipeline.Pretrain(data.values()).ok());
  EXPECT_EQ(pipeline.fused_dim(), 6);
  ASSERT_TRUE(pipeline.FineTune(data).ok());
  EXPECT_TRUE(pipeline.Predict(data.values()).ok());
}

TEST(PipelineTest, EncoderAndFusionParamsRespectFreeze) {
  auto cfg = TinyConfig();
  cfg.finetune_params.SetInt("finetune_encoder", 0);
  auto frozen = UnitsPipeline::Create(cfg, 2);
  EXPECT_TRUE((*frozen)->EncoderAndFusionParams().empty());

  cfg.finetune_params.SetInt("finetune_encoder", 1);
  auto tuned = UnitsPipeline::Create(cfg, 2);
  EXPECT_FALSE((*tuned)->EncoderAndFusionParams().empty());
}

TEST(PipelineTest, ProjectionFusionParamsAlwaysTrainable) {
  auto cfg = TinyConfig();
  cfg.fusion = "projection";
  cfg.finetune_params.SetInt("finetune_encoder", 0);
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  EXPECT_EQ((*pipeline)->EncoderAndFusionParams().size(), 2u);  // W + b
}

TEST(PipelineTest, GatedFusionEndToEnd) {
  auto cfg = TinyConfig();
  cfg.fusion = "gated";
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE(pipeline.ok());
  auto data = TinyData();
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  auto result = (*pipeline)->Predict(data.values());
  ASSERT_TRUE(result.ok());
  // The gate logits are part of the trainable fusion parameters.
  auto* gated = dynamic_cast<GatedFusion*>((*pipeline)->fusion());
  ASSERT_NE(gated, nullptr);
  EXPECT_EQ(gated->GateValues().size(), 2u);
}

TEST(PipelineTest, GatedFusionSerializationRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gated.json";
  auto cfg = TinyConfig();
  cfg.fusion = "gated";
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto data = TinyData();
  ASSERT_TRUE((*pipeline)->FineTune(data).ok());
  const Tensor z_before = (*pipeline)->TransformFused(data.values());
  ASSERT_TRUE((*pipeline)->SaveJson(path).ok());
  auto loaded = UnitsPipeline::LoadJson(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Tensor z_after = (*loaded)->TransformFused(data.values());
  EXPECT_TRUE(ops::AllClose(z_before, z_after, 1e-5f, 1e-5f));
}

TEST(PipelineTest, DeterministicAcrossIdenticalRuns) {
  auto data = TinyData();
  auto run = [&]() {
    auto pipeline = UnitsPipeline::Create(TinyConfig(), 2);
    (*pipeline)->Pretrain(data.values()).CheckOk();
    return (*pipeline)->TransformFused(data.values());
  };
  EXPECT_TRUE(ops::AllClose(run(), run(), 0.0f, 0.0f));
}

TEST(PipelineTest, PartialLabelingFlow) {
  // Figure 2a, left: pre-train on everything, fine-tune on the small
  // labeled subset, predict on held-out data.
  auto cfg = TinyConfig();
  cfg.templates = {"whole_series_contrastive"};
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  auto data = TinyData(40);
  Rng rng(3);
  auto [train, test] = data.TrainTestSplit(0.5, &rng);
  auto [labeled, unlabeled] = train.PartialLabelSplit(0.3, &rng);
  ASSERT_TRUE((*pipeline)->Pretrain(unlabeled.values()).ok());
  ASSERT_TRUE((*pipeline)->FineTune(labeled).ok());
  auto result = (*pipeline)->Predict(test.values());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.size(),
            static_cast<size_t>(test.num_samples()));
}

TEST(PipelineTest, DomainShiftFlow) {
  // Figure 2a, right: pre-train on the source domain, fine-tune on a small
  // target set, predict on target data.
  data::ClassificationOpts opts;
  opts.num_samples = 32;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.seed = 10;
  data::DomainShift shift;
  auto [source, target] = data::MakeDomainShiftPair(opts, shift);

  auto cfg = TinyConfig();
  cfg.templates = {"whole_series_contrastive"};
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE((*pipeline)->Pretrain(source.values()).ok());
  Rng rng(5);
  auto [target_train, target_test] = target.TrainTestSplit(0.5, &rng);
  ASSERT_TRUE((*pipeline)->FineTune(target_train).ok());
  auto result = (*pipeline)->Predict(target_test.values());
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace units::core
