// Reference-oracle verification of the cache-blocked SIMD GEMM
// (tensor/gemm.{h,cc}): a seeded fuzz sweep over ~200 shapes straddling
// every micro/macro tile boundary compares the blocked kernel against the
// PR-1 naive loop kept as NaiveMatMul, plus bitwise 1-vs-8-thread
// determinism of the blocked path (mirroring test_parallel.cc) and the
// regression test for the retired per-row RowGrain partitioning.

#include "tensor/gemm.h"

#include <array>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"
#include "tensor/tensor_ops.h"

namespace units::gemm {
namespace {

/// Restores the global pool to the default size when a test returns.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { base::SetNumThreads(base::ThreadPool::DefaultNumThreads()); }
};

/// Runs the blocked kernel directly (bypassing the UNITS_GEMM dispatch, so
/// the oracle comparison is meaningful even under UNITS_GEMM=naive).
Tensor BlockedMatMul(const Tensor& a, const Tensor& b) {
  Tensor out({a.dim(0), b.dim(1)});
  Gemm(a.dim(0), a.dim(1), b.dim(1), a.data(), b.data(), out.data());
  return out;
}

Tensor BlockedBatchedMatMul(const Tensor& a, const Tensor& b) {
  Tensor out({a.dim(0), a.dim(1), b.dim(2)});
  BatchedGemm(a.dim(0), a.dim(1), a.dim(2), b.dim(2), a.data(), b.data(),
              out.data());
  return out;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.numel() == 0) return true;  // empty tensors may have null data()
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Max absolute error, reported relative to the oracle's magnitude:
/// max|x - ref| <= tol * max(1, max|ref|). The blocked kernel reassociates
/// the k-sum (KC panels, FMA), so exact equality is not expected.
void ExpectCloseToOracle(const Tensor& got, const Tensor& ref,
                         const std::string& label, float tol = 1e-4f) {
  ASSERT_EQ(got.shape(), ref.shape()) << label;
  float max_abs_ref = 0.0f;
  float max_err = 0.0f;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    max_abs_ref = std::max(max_abs_ref, std::fabs(ref[i]));
    max_err = std::max(max_err, std::fabs(got[i] - ref[i]));
  }
  EXPECT_LE(max_err, tol * std::max(1.0f, max_abs_ref)) << label;
}

/// Dimension candidates straddling the tile boundaries: tiny (< one micro
/// tile), around kNR=16, 32, around 64, and around 128 (> kMC row tiles at
/// 96 are covered by the determinism tests below).
const std::vector<int64_t>& DimCandidates() {
  static const std::vector<int64_t> dims = {
      1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
      127, 128, 129};
  return dims;
}

TEST(GemmOracleTest, FuzzSweepMatchesNaive) {
  Rng rng(2026);
  const auto& dims = DimCandidates();
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t m = dims[rng.UniformInt(dims.size())];
    const int64_t k = dims[rng.UniformInt(dims.size())];
    const int64_t n = dims[rng.UniformInt(dims.size())];
    Tensor a;
    Tensor b;
    // Every fourth shape builds its inputs through Transpose, exercising
    // operands produced as transposed views of other layouts (the pattern
    // the autograd backward emits).
    if (iter % 4 == 0) {
      a = ops::Transpose2D(Tensor::RandNormal({k, m}, &rng));
      b = ops::Transpose2D(Tensor::RandNormal({n, k}, &rng));
    } else {
      a = Tensor::RandNormal({m, k}, &rng);
      b = Tensor::RandNormal({k, n}, &rng);
    }
    const Tensor ref = ops::NaiveMatMul(a, b);
    const Tensor got = BlockedMatMul(a, b);
    ExpectCloseToOracle(got, ref,
                        "m=" + std::to_string(m) + " k=" + std::to_string(k) +
                            " n=" + std::to_string(n));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      break;
    }
  }
}

TEST(GemmOracleTest, BatchedFuzzSweepMatchesNaive) {
  Rng rng(2027);
  const auto& dims = DimCandidates();
  for (int iter = 0; iter < 50; ++iter) {
    const int64_t batch = 1 + static_cast<int64_t>(rng.UniformInt(5));
    const int64_t m = dims[rng.UniformInt(dims.size())];
    const int64_t k = dims[rng.UniformInt(dims.size())];
    const int64_t n = dims[rng.UniformInt(dims.size())];
    Tensor a = Tensor::RandNormal({batch, m, k}, &rng);
    Tensor b = Tensor::RandNormal({batch, k, n}, &rng);
    if (iter % 4 == 0) {
      b = ops::Transpose(Tensor::RandNormal({batch, n, k}, &rng), 1, 2);
    }
    const Tensor ref = ops::NaiveBatchedMatMul(a, b);
    const Tensor got = BlockedBatchedMatMul(a, b);
    ExpectCloseToOracle(got, ref,
                        "batch=" + std::to_string(batch) + " m=" +
                            std::to_string(m) + " k=" + std::to_string(k) +
                            " n=" + std::to_string(n));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      break;
    }
  }
}

TEST(GemmOracleTest, ZeroSizeEdges) {
  Rng rng(3);
  for (const auto& [m, k, n] :
       std::vector<std::array<int64_t, 3>>{{0, 5, 7},
                                           {5, 0, 7},
                                           {5, 7, 0},
                                           {0, 0, 0},
                                           {1, 0, 1}}) {
    Tensor a = Tensor::RandNormal({m, k}, &rng);
    Tensor b = Tensor::RandNormal({k, n}, &rng);
    const Tensor ref = ops::NaiveMatMul(a, b);
    const Tensor got = BlockedMatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(got, ref))
        << "m=" << m << " k=" << k << " n=" << n;
    // k == 0 must yield exact zeros, not uninitialized memory.
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], 0.0f);
    }
  }
}

TEST(GemmOracleTest, PublicMatMulDispatchMatchesOracle) {
  // Whatever UNITS_GEMM selects, the public entry points must agree with
  // the oracle within tolerance (bitwise when the naive path is active).
  Rng rng(5);
  Tensor a = Tensor::RandNormal({33, 65}, &rng);
  Tensor b = Tensor::RandNormal({65, 17}, &rng);
  ExpectCloseToOracle(ops::MatMul(a, b), ops::NaiveMatMul(a, b), "matmul");
  Tensor ba = Tensor::RandNormal({3, 17, 31}, &rng);
  Tensor bb = Tensor::RandNormal({3, 31, 9}, &rng);
  ExpectCloseToOracle(ops::BatchedMatMul(ba, bb),
                      ops::NaiveBatchedMatMul(ba, bb), "batched");
}

// --- thread-count determinism of the blocked path -------------------------

/// Shapes chosen to land on and around the macro/micro tile boundaries, so
/// chunking must align with whole tiles to stay bitwise reproducible.
std::vector<std::array<int64_t, 3>> TileBoundaryShapes() {
  return {
      {kMC - 1, 40, kNR * 2 + 1},       // last row tile one short
      {kMC, kKC, kNR},                  // exact single tiles
      {kMC + 1, kKC + 1, kNR + 1},      // one past every boundary
      {2 * kMC + 3, 2 * kKC + 5, kNC + 7},  // multiple panels each way
      {kMR, 1, 1},                      // single micro tile, degenerate k/n
  };
}

TEST(GemmDeterminismTest, BlockedIsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(29);
  for (const auto& [m, k, n] : TileBoundaryShapes()) {
    Tensor a = Tensor::RandNormal({m, k}, &rng);
    Tensor b = Tensor::RandNormal({k, n}, &rng);
    base::SetNumThreads(1);
    const Tensor serial = BlockedMatMul(a, b);
    base::SetNumThreads(8);
    const Tensor parallel = BlockedMatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(serial, parallel))
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmDeterminismTest, BatchedBlockedIsBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(31);
  // Batched shapes the attention/encoder paths actually emit, plus a
  // boundary-straddling row count.
  for (const auto& [batch, m, k, n] :
       std::vector<std::array<int64_t, 4>>{{8, 96, 8, 96},
                                           {16, kMC + 1, 33, kNR + 1},
                                           {1, 2 * kMC + 3, 17, 40}}) {
    Tensor a = Tensor::RandNormal({batch, m, k}, &rng);
    Tensor b = Tensor::RandNormal({batch, k, n}, &rng);
    base::SetNumThreads(1);
    const Tensor serial = BlockedBatchedMatMul(a, b);
    base::SetNumThreads(8);
    const Tensor parallel = BlockedBatchedMatMul(a, b);
    EXPECT_TRUE(BitwiseEqual(serial, parallel))
        << "batch=" << batch << " m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmDeterminismTest, PublicOpsAreBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(37);
  Tensor a = Tensor::RandNormal({kMC + kMR + 1, 71}, &rng);
  Tensor b = Tensor::RandNormal({71, 57}, &rng);
  base::SetNumThreads(1);
  const Tensor s = ops::MatMul(a, b);
  base::SetNumThreads(8);
  const Tensor p = ops::MatMul(a, b);
  EXPECT_TRUE(BitwiseEqual(s, p));
}

// --- RowGrain audit regression --------------------------------------------

// PR 1 partitioned MatMul by output rows with a per-row grain
// (RowGrain(k*n)); with cache blocking that scheme could put a chunk
// boundary inside a macro-tile, making the k-panel accumulation order (and
// hence the bits) depend on the thread count. The partition unit is now a
// whole macro-tile: TileGrain counts tiles, never rows.

TEST(RowGrainAuditTest, TileGrainNeverSplitsAMacroTile) {
  // Huge per-tile work -> one tile per chunk; tiny work -> many tiles per
  // chunk. In both cases the unit is >= 1 whole tile.
  EXPECT_EQ(TileGrain(kGrainFlops * 100), 1);
  EXPECT_GE(TileGrain(1), kGrainFlops);
  EXPECT_GE(TileGrain(0), 1);
}

TEST(RowGrainAuditTest, AdversarialGrainShapeIsDeterministic) {
  ThreadCountGuard guard;
  // k*n large enough that the old RowGrain(k*n) would have been 1 row —
  // i.e. the old partitioner would split inside the 96-row macro-tile.
  const int64_t m = kMC + 1;
  const int64_t k = 300;  // > kKC: two k panels, so mid-tile splits would
  const int64_t n = 200;  //        change accumulation interleaving
  Rng rng(41);
  Tensor a = Tensor::RandNormal({m, k}, &rng);
  Tensor b = Tensor::RandNormal({k, n}, &rng);
  std::vector<Tensor> results;
  for (int threads : {1, 2, 3, 8}) {
    base::SetNumThreads(threads);
    results.push_back(BlockedMatMul(a, b));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(results[0], results[i])) << "threads index " << i;
  }
  ExpectCloseToOracle(results[0], ops::NaiveMatMul(a, b), "adversarial");
}

}  // namespace
}  // namespace units::gemm
