// Captured eval-graph plans (src/plan/): differential tests of the planned
// execution substrate against the dynamic autograd walk. The contract under
// test is strict: a captured plan must be BITWISE identical to the dynamic
// forward it replaced — on inputs other than the one it was traced on, at
// any thread count — and steady-state planned Predicts must perform zero
// tensor allocations.

#include "plan/plan.h"

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "base/parallel.h"
#include "core/pipeline.h"
#include "core/tasks/tasks.h"
#include "data/synthetic.h"
#include "data/window.h"
#include "plan/graph.h"
#include "tensor/tensor_ops.h"

namespace units {
namespace {

namespace ag = ::units::autograd;
using ag::Variable;
using core::UnitsPipeline;

/// Scoped UNITS_PLAN override (nullptr = unset, i.e. the planned default);
/// restores the previous value on destruction so tests keep working under
/// the CI leg that exports UNITS_PLAN=dynamic for the whole suite.
class PlanModeGuard {
 public:
  explicit PlanModeGuard(const char* mode) {
    const char* prev = std::getenv("UNITS_PLAN");
    if (prev != nullptr) {
      saved_ = prev;
    }
    Apply(mode);
  }
  ~PlanModeGuard() { Apply(saved_.empty() ? nullptr : saved_.c_str()); }

 private:
  static void Apply(const char* mode) {
    if (mode != nullptr) {
      setenv("UNITS_PLAN", mode, 1);
    } else {
      unsetenv("UNITS_PLAN");
    }
  }
  std::string saved_;
};

void ExpectBitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  if (a.numel() == 0) {
    return;
  }
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)))
      << what << ": planned and dynamic outputs are not bitwise identical";
}

std::vector<Tensor> RunDynamic(const plan::EvalPlan::EvalFn& fn,
                               const Tensor& x) {
  ag::NoGradGuard no_grad;
  std::vector<Tensor> outs;
  for (Variable& v : fn(Variable(x))) {
    outs.push_back(v.data());
  }
  return outs;
}

std::vector<Tensor> RunPlanned(plan::EvalPlan* p, const Tensor& x) {
  std::vector<Tensor> outs;
  p->Run(x, [&](int i, const Tensor& t) {
    (void)i;
    outs.push_back(t.Clone());  // views die when the state is released
  });
  return outs;
}

Tensor RandomTensor(const Shape& shape, std::mt19937* gen) {
  std::normal_distribution<float> dist(0.0f, 0.7f);
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = dist(*gen);
  }
  return t;
}

// --- fusion legality -------------------------------------------------------

TEST(PlanFusionTest, BiasGeluChainFusesAndMatchesDynamic) {
  std::mt19937 gen(7);
  const Tensor bias = RandomTensor({3, 1}, &gen);  // broadcast over [N,3,T]
  auto fn = [&](const Variable& xb) {
    return std::vector<Variable>{ag::Gelu(ag::Add(xb, ag::Constant(bias)))};
  };
  const Tensor x1 = RandomTensor({2, 3, 5}, &gen);
  const Tensor x2 = RandomTensor({2, 3, 5}, &gen);
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x1, &error);
  ASSERT_NE(plan, nullptr) << error;
  // bias-add -> GELU collapses into one multi-step memory sweep.
  EXPECT_GE(plan->num_multi_step_sweeps(), 1);
  auto planned = RunPlanned(plan.get(), x2);
  auto dynamic = RunDynamic(fn, x2);
  ASSERT_EQ(planned.size(), dynamic.size());
  ExpectBitwise(planned[0], dynamic[0], "bias+gelu");
}

TEST(PlanFusionTest, ResidualAddThenScaleTanhChains) {
  std::mt19937 gen(11);
  const Tensor res = RandomTensor({2, 4, 6}, &gen);
  auto fn = [&](const Variable& xb) {
    Variable y = ag::Add(xb, ag::Constant(res));       // residual add
    Variable z = ag::Tanh(ag::MulScalar(y, 0.125f));   // scale -> tanh
    return std::vector<Variable>{z};
  };
  const Tensor x1 = RandomTensor({2, 4, 6}, &gen);
  const Tensor x2 = RandomTensor({2, 4, 6}, &gen);
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x1, &error);
  ASSERT_NE(plan, nullptr) << error;
  // The whole add -> scale -> tanh chain collapses into one memory sweep.
  EXPECT_GE(plan->num_multi_step_sweeps(), 1);
  EXPECT_GE(plan->max_sweep_len(), 3);
  ExpectBitwise(RunPlanned(plan.get(), x2)[0], RunDynamic(fn, x2)[0],
                "residual+scale+tanh");
}

TEST(PlanFusionTest, BroadcastEdgeCaseTable) {
  // Fused sweeps must honor right-aligned broadcasting exactly like the
  // dynamic kernels: size-1 dims, scalar-ish consts, trailing dims.
  const std::vector<Shape> const_shapes = {
      {3, 1}, {1}, {1, 1}, {5}, {3, 5}, {2, 3, 5}, {1, 3, 1}};
  std::mt19937 gen(13);
  for (const Shape& cs : const_shapes) {
    const Tensor c = RandomTensor(cs, &gen);
    auto fn = [&](const Variable& xb) {
      return std::vector<Variable>{
          ag::Tanh(ag::Mul(ag::Add(xb, ag::Constant(c)), ag::Constant(c)))};
    };
    const Tensor x1 = RandomTensor({2, 3, 5}, &gen);
    const Tensor x2 = RandomTensor({2, 3, 5}, &gen);
    std::string error;
    auto plan = plan::EvalPlan::Capture(fn, x1, &error);
    ASSERT_NE(plan, nullptr) << "const shape " << ShapeToString(cs) << ": "
                             << error;
    ExpectBitwise(RunPlanned(plan.get(), x2)[0], RunDynamic(fn, x2)[0],
                  "broadcast const " + ShapeToString(cs));
  }
}

TEST(PlanFusionTest, EmptyTensorsExecute) {
  std::mt19937 gen(17);
  auto fn = [&](const Variable& xb) {
    return std::vector<Variable>{ag::Gelu(ag::MulScalar(xb, 2.0f))};
  };
  const Tensor x(Shape{0, 3, 4});
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x, &error);
  ASSERT_NE(plan, nullptr) << error;
  auto outs = RunPlanned(plan.get(), x);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].shape(), (Shape{0, 3, 4}));
}

TEST(PlanFusionTest, ProducerWithTwoConsumersIsNotAbsorbed) {
  // y feeds both branches; fusing it into either would recompute or
  // reorder work. Legality requires it to stay a standalone value, and
  // the outputs must still match the dynamic walk bitwise.
  std::mt19937 gen(19);
  auto fn = [&](const Variable& xb) {
    Variable y = ag::Gelu(xb);
    return std::vector<Variable>{ag::Add(ag::Tanh(y), ag::Sigmoid(y))};
  };
  const Tensor x1 = RandomTensor({3, 4}, &gen);
  const Tensor x2 = RandomTensor({3, 4}, &gen);
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x1, &error);
  ASSERT_NE(plan, nullptr) << error;
  ExpectBitwise(RunPlanned(plan.get(), x2)[0], RunDynamic(fn, x2)[0],
                "diamond");
}

// --- memory planner --------------------------------------------------------

TEST(PlanMemoryTest, ChainReusesBuffersInsteadOfAccumulating) {
  // Eight serial softmaxes cannot fuse; liveness lets them ping-pong
  // between two arena slots, so the arena stays O(1) in chain length.
  auto fn = [](const Variable& xb) {
    Variable y = xb;
    for (int i = 0; i < 8; ++i) {
      y = ag::Softmax(y, /*axis=*/1);
    }
    return std::vector<Variable>{y};
  };
  std::mt19937 gen(23);
  const Tensor x1 = RandomTensor({4, 16}, &gen);
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x1, &error);
  ASSERT_NE(plan, nullptr) << error;
  const int64_t one_buffer =
      x1.numel() * static_cast<int64_t>(sizeof(float));
  EXPECT_LE(plan->arena_bytes(), 3 * one_buffer);
  EXPECT_GT(plan->arena_bytes(), 0);
  const Tensor x2 = RandomTensor({4, 16}, &gen);
  ExpectBitwise(RunPlanned(plan.get(), x2)[0], RunDynamic(fn, x2)[0],
                "softmax chain");
}

TEST(PlanCaptureTest, UntracedOpPoisonsTheCapture) {
  // GatherRows has no trace hook; consuming its result must abandon the
  // capture with an error instead of silently baking in a constant.
  auto fn = [](const Variable& xb) {
    Variable picked = ag::GatherRows(xb, {0, 0});
    return std::vector<Variable>{ag::Tanh(picked)};
  };
  std::mt19937 gen(29);
  const Tensor x = RandomTensor({3, 4}, &gen);
  std::string error;
  auto plan = plan::EvalPlan::Capture(fn, x, &error);
  EXPECT_EQ(plan, nullptr);
  EXPECT_FALSE(error.empty());
}

// --- 200-case seeded differential fuzz -------------------------------------

/// One randomly generated eval program: a spec of ops interpreted the same
/// way on every invocation (capture, replay, dynamic reference).
struct FuzzProgram {
  struct Step {
    int op = 0;
    int a = 0;  // pool operand
    int b = 0;  // second pool operand (same shape as a)
    float scalar = 0.0f;
    int const_idx = -1;
  };
  std::vector<Step> steps;
  std::vector<Tensor> consts;
  Shape input_shape;
  size_t second_output = 0;

  std::vector<Variable> operator()(const Variable& xb) const {
    std::vector<Variable> pool{xb};
    for (const Step& s : steps) {
      const Variable& a = pool[static_cast<size_t>(s.a)];
      switch (s.op) {
        case 0:
          pool.push_back(ag::Relu(a));
          break;
        case 1:
          pool.push_back(ag::Gelu(a));
          break;
        case 2:
          pool.push_back(ag::Tanh(a));
          break;
        case 3:
          pool.push_back(ag::Sigmoid(a));
          break;
        case 4:
          pool.push_back(ag::Square(a));
          break;
        case 5:
          pool.push_back(ag::Abs(a));
          break;
        case 6:
          pool.push_back(ag::AddScalar(a, s.scalar));
          break;
        case 7:
          pool.push_back(ag::MulScalar(a, s.scalar));
          break;
        case 8:
          pool.push_back(ag::LeakyRelu(a, 0.0625f));
          break;
        case 9:
          pool.push_back(ag::Add(a, pool[static_cast<size_t>(s.b)]));
          break;
        case 10:
          pool.push_back(ag::Sub(a, pool[static_cast<size_t>(s.b)]));
          break;
        case 11:
          pool.push_back(ag::Mul(a, pool[static_cast<size_t>(s.b)]));
          break;
        case 12: {
          // Safe division: |denominator| + 1 keeps it away from zero.
          Variable denom = ag::AddScalar(
              ag::Abs(pool[static_cast<size_t>(s.b)]), 1.0f);
          pool.push_back(ag::Div(a, denom));
          break;
        }
        case 13:
          pool.push_back(
              ag::Add(a, ag::Constant(consts[static_cast<size_t>(
                             s.const_idx)])));
          break;
        case 14:
          pool.push_back(ag::Softmax(a, /*axis=*/2));
          break;
        case 15:
          pool.push_back(ag::Exp(ag::Tanh(a)));  // bounded exponent
          break;
        case 16:
          pool.push_back(ag::Sqrt(ag::AddScalar(ag::Abs(a), 0.5f)));
          break;
        default:
          pool.push_back(ag::Neg(a));
          break;
      }
    }
    return {pool.back(), pool[second_output]};
  }
};

FuzzProgram MakeFuzzProgram(uint64_t seed) {
  std::mt19937 gen(static_cast<uint32_t>(seed));
  FuzzProgram prog;
  std::uniform_int_distribution<int64_t> bdist(1, 3), cdist(1, 4), tdist(2, 6);
  prog.input_shape = {bdist(gen), cdist(gen), tdist(gen)};
  std::uniform_int_distribution<int> ndist(3, 9), opdist(0, 17);
  std::uniform_real_distribution<float> sdist(-1.5f, 1.5f);
  const int num_steps = ndist(gen);
  // Shapes tracked during generation so binary operands always match.
  std::vector<Shape> shapes{prog.input_shape};
  for (int i = 0; i < num_steps; ++i) {
    FuzzProgram::Step step;
    step.op = opdist(gen);
    step.a = std::uniform_int_distribution<int>(
        0, static_cast<int>(shapes.size()) - 1)(gen);
    step.scalar = sdist(gen);
    const Shape& sa = shapes[static_cast<size_t>(step.a)];
    if (step.op >= 9 && step.op <= 12) {
      // Pick a same-shaped partner or degrade to a unary op.
      std::vector<int> candidates;
      for (size_t j = 0; j < shapes.size(); ++j) {
        if (shapes[j] == sa) {
          candidates.push_back(static_cast<int>(j));
        }
      }
      step.b = candidates[std::uniform_int_distribution<size_t>(
          0, candidates.size() - 1)(gen)];
    } else if (step.op == 13) {
      // Broadcast constant over the trailing dims of sa.
      std::mt19937 cgen(static_cast<uint32_t>(seed * 31 + i));
      Shape cs;
      switch (std::uniform_int_distribution<int>(0, 2)(gen)) {
        case 0:
          cs = {sa.back()};
          break;
        case 1:
          cs = {sa[sa.size() - 2], 1};
          break;
        default:
          cs = sa;
          break;
      }
      step.const_idx = static_cast<int>(prog.consts.size());
      prog.consts.push_back(RandomTensor(cs, &cgen));
    }
    shapes.push_back(sa);  // every op in the table preserves shape
    prog.steps.push_back(step);
  }
  prog.second_output = shapes.size() / 2;
  return prog;
}

TEST(PlanFuzzTest, TwoHundredRandomProgramsMatchDynamicBitwise) {
  base::SetNumThreads(1);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const FuzzProgram prog = MakeFuzzProgram(seed);
    std::mt19937 gen(static_cast<uint32_t>(seed + 9000));
    const Tensor x1 = RandomTensor(prog.input_shape, &gen);
    const Tensor x2 = RandomTensor(prog.input_shape, &gen);
    auto fn = [&prog](const Variable& xb) { return prog(xb); };
    std::string error;
    auto plan = plan::EvalPlan::Capture(fn, x1, &error);
    ASSERT_NE(plan, nullptr) << "seed " << seed << ": " << error;
    auto planned = RunPlanned(plan.get(), x2);
    auto dynamic = RunDynamic(fn, x2);
    ASSERT_EQ(planned.size(), dynamic.size()) << "seed " << seed;
    for (size_t i = 0; i < planned.size(); ++i) {
      ExpectBitwise(planned[i], dynamic[i],
                    "fuzz seed " + std::to_string(seed) + " output " +
                        std::to_string(i));
    }
    if (seed % 10 == 0) {
      // Thread-count invariance: the same plan at 8 threads.
      base::SetNumThreads(8);
      auto planned8 = RunPlanned(plan.get(), x2);
      base::SetNumThreads(1);
      for (size_t i = 0; i < planned.size(); ++i) {
        ExpectBitwise(planned8[i], planned[i],
                      "fuzz seed " + std::to_string(seed) + " @8 threads");
      }
    }
  }
}

// --- pipeline-level differential matrix ------------------------------------

UnitsPipeline::Config TinyConfig(const std::string& task) {
  UnitsPipeline::Config cfg;
  cfg.templates = {"whole_series_contrastive"};
  cfg.task = task;
  cfg.mode = core::ConfigMode::kManual;
  cfg.pretrain_params.SetInt("epochs", 1);
  cfg.pretrain_params.SetInt("batch_size", 8);
  cfg.pretrain_params.SetInt("hidden_channels", 8);
  cfg.pretrain_params.SetInt("repr_dim", 12);
  cfg.pretrain_params.SetInt("num_blocks", 1);
  cfg.finetune_params.SetInt("epochs", 2);
  cfg.finetune_params.SetInt("batch_size", 8);
  cfg.seed = 7;
  return cfg;
}

data::TimeSeriesDataset ClassData() {
  data::ClassificationOpts opts;
  opts.num_samples = 24;
  opts.num_classes = 2;
  opts.num_channels = 2;
  opts.length = 32;
  opts.noise = 0.2f;
  opts.seed = 5;
  return data::MakeClassificationDataset(opts);
}

data::TimeSeriesDataset ForecastData() {
  data::ForecastSeriesOpts opts;
  opts.num_channels = 2;
  opts.seed = 3;
  return data::MakeForecastDataset(opts, 32, 8, 8);
}

data::TimeSeriesDataset AnomalyData() {
  data::AnomalyOpts opts;
  opts.num_channels = 2;
  opts.total_length = 600;
  opts.seed = 11;
  Tensor clean = data::MakeCleanSeries(opts);
  return data::TimeSeriesDataset(data::SlidingWindows(clean, 32, 16));
}

void ExpectSameResult(const core::TaskResult& a, const core::TaskResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.labels, b.labels) << what;
  ExpectBitwise(a.predictions, b.predictions, what + " predictions");
  ExpectBitwise(a.scores, b.scores, what + " scores");
}

/// Fits a tiny pipeline for `task`, flips it to serving steady state, and
/// checks planned Predict == dynamic Predict bitwise at several batch
/// sizes and thread counts.
void CheckTaskPlannedVsDynamic(const std::string& task,
                               const data::TimeSeriesDataset& train) {
  PlanModeGuard planned(nullptr);  // this test IS about the planned path
  auto cfg = TinyConfig(task);
  if (task == "clustering") {
    cfg.finetune_params.SetInt("num_clusters", 2);
    cfg.finetune_params.SetInt("cluster_finetune_epochs", 1);
  }
  auto pipeline = UnitsPipeline::Create(cfg, 2);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());

  for (const int64_t batch : {int64_t{1}, int64_t{4}, int64_t{16}}) {
    const Tensor x = ops::Slice(train.values(), 0, 0, batch);
    for (const int threads : {1, 8}) {
      base::SetNumThreads(threads);
      Result<core::TaskResult> planned = (*pipeline)->Predict(x);
      ASSERT_TRUE(planned.ok()) << task;
      Result<core::TaskResult> dynamic = [&] {
        PlanModeGuard dyn("dynamic");
        return (*pipeline)->Predict(x);
      }();
      ASSERT_TRUE(dynamic.ok()) << task;
      ExpectSameResult(*planned, *dynamic,
                       task + " batch " + std::to_string(batch) + " threads " +
                           std::to_string(threads));
    }
  }
  base::SetNumThreads(1);
  // The matrix above must actually have exercised captured plans.
  const plan::PlanCacheStats stats = (*pipeline)->GetPlanCacheStats();
  EXPECT_GE(stats.plans, 1) << task;
  EXPECT_GT(stats.planned_chunks, 0) << task;
  EXPECT_GT(stats.dynamic_chunks, 0) << task;
}

TEST(PlanPipelineTest, ClassificationPlannedVsDynamic) {
  CheckTaskPlannedVsDynamic("classification", ClassData());
}

TEST(PlanPipelineTest, ClusteringPlannedVsDynamic) {
  CheckTaskPlannedVsDynamic("clustering", ClassData());
}

TEST(PlanPipelineTest, ForecastingPlannedVsDynamic) {
  CheckTaskPlannedVsDynamic("forecasting", ForecastData());
}

TEST(PlanPipelineTest, AnomalyPlannedVsDynamic) {
  CheckTaskPlannedVsDynamic("anomaly_detection", AnomalyData());
}

TEST(PlanPipelineTest, ImputationPlannedVsDynamic) {
  CheckTaskPlannedVsDynamic("imputation", ForecastData());
}

TEST(PlanPipelineTest, VerifyModeRunsCleanOnAllTasks) {
  // UNITS_PLAN=verify executes both substrates per chunk and aborts on
  // any bitwise mismatch; surviving a Predict is the assertion.
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE(pipeline.ok());
  auto train = ClassData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  PlanModeGuard verify("verify");
  ASSERT_TRUE((*pipeline)->Predict(train.values()).ok());
}

TEST(PlanPipelineTest, TrainingInvalidatesThePlanCache) {
  PlanModeGuard planned(nullptr);
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE(pipeline.ok());
  auto train = ClassData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  const Tensor x = ops::Slice(train.values(), 0, 0, 4);
  ASSERT_TRUE((*pipeline)->Predict(x).ok());
  EXPECT_GE((*pipeline)->GetPlanCacheStats().plans, 1);
  // Weights may change under a captured constant: plans must die.
  (*pipeline)->SetTraining(true);
  EXPECT_EQ((*pipeline)->GetPlanCacheStats().plans, 0);
  // And Predict still works (dynamically) until re-armed for serving.
  ASSERT_TRUE((*pipeline)->Predict(x).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  ASSERT_TRUE((*pipeline)->Predict(x).ok());
  EXPECT_GE((*pipeline)->GetPlanCacheStats().plans, 1);
}

// --- steady-state allocation behavior --------------------------------------

TEST(PlanAllocTest, SteadyStatePredictAllocatesNothing) {
  PlanModeGuard planned(nullptr);
  base::SetNumThreads(1);
  auto pipeline = UnitsPipeline::Create(TinyConfig("classification"), 2);
  ASSERT_TRUE(pipeline.ok());
  auto train = ClassData();
  ASSERT_TRUE((*pipeline)->FineTune(train).ok());
  ASSERT_TRUE((*pipeline)->EnsureReadyForServing().ok());
  const Tensor x = ops::Slice(train.values(), 0, 0, 16);

  // Warm up: captures the plan, fills the exec-state and result pools.
  for (int i = 0; i < 3; ++i) {
    auto r = (*pipeline)->Predict(x);
    ASSERT_TRUE(r.ok());
  }  // results dropped here, so the pool holds the sole references again

  ResetTensorAllocStats();
  auto r = (*pipeline)->Predict(x);
  ASSERT_TRUE(r.ok());
  const TensorAllocStats stats = GetTensorAllocStats();
  EXPECT_EQ(stats.allocations, 0)
      << "steady-state planned Predict allocated " << stats.allocations
      << " fresh tensor buffers (" << stats.total_floats << " floats)";
  // Sanity: the answer is still right (labels populated, finite probs).
  EXPECT_EQ(r->labels.size(), 16u);
  EXPECT_FALSE(ops::HasNonFinite(r->predictions));
}

}  // namespace
}  // namespace units
