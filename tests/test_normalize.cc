#include "data/normalize.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor_ops.h"

namespace units::data {
namespace {

Tensor MakeData() {
  Rng rng(3);
  Tensor x = Tensor::Zeros({32, 2, 64});
  float* p = x.data();
  for (int64_t i = 0; i < 32; ++i) {
    for (int64_t t = 0; t < 64; ++t) {
      p[(i * 2 + 0) * 64 + t] = static_cast<float>(rng.Normal(5.0, 2.0));
      p[(i * 2 + 1) * 64 + t] = static_cast<float>(rng.Normal(-3.0, 0.5));
    }
  }
  return x;
}

TEST(ZScoreTest, FitComputesPerChannelStats) {
  ZScoreNormalizer norm;
  ASSERT_TRUE(norm.Fit(MakeData()).ok());
  ASSERT_EQ(norm.mean().size(), 2u);
  EXPECT_NEAR(norm.mean()[0], 5.0f, 0.3f);
  EXPECT_NEAR(norm.mean()[1], -3.0f, 0.1f);
  EXPECT_NEAR(norm.stddev()[0], 2.0f, 0.3f);
  EXPECT_NEAR(norm.stddev()[1], 0.5f, 0.1f);
}

TEST(ZScoreTest, TransformStandardizes) {
  ZScoreNormalizer norm;
  Tensor x = MakeData();
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor z = norm.Transform(x);
  // Each channel now has ~0 mean, ~1 std.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    const float* p = z.data();
    for (int64_t i = 0; i < 32; ++i) {
      for (int64_t t = 0; t < 64; ++t) {
        const float v = p[(i * 2 + c) * 64 + t];
        sum += v;
        sq += v * v;
      }
    }
    const double n = 32 * 64;
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(ZScoreTest, InverseTransformRoundTrips) {
  ZScoreNormalizer norm;
  Tensor x = MakeData();
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor back = norm.InverseTransform(norm.Transform(x));
  EXPECT_TRUE(ops::AllClose(back, x, 1e-4f, 1e-4f));
}

TEST(ZScoreTest, TransformDoesNotMutateInput) {
  ZScoreNormalizer norm;
  Tensor x = MakeData();
  Tensor copy = x.Clone();
  ASSERT_TRUE(norm.Fit(x).ok());
  norm.Transform(x);
  EXPECT_TRUE(ops::AllClose(x, copy));
}

TEST(ZScoreTest, ConstantChannelDoesNotDivideByZero) {
  Tensor x = Tensor::Full({4, 1, 8}, 3.0f);
  ZScoreNormalizer norm;
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor z = norm.Transform(x);
  EXPECT_FALSE(ops::HasNonFinite(z));
}

TEST(ZScoreTest, RejectsWrongRank) {
  ZScoreNormalizer norm;
  EXPECT_FALSE(norm.Fit(Tensor::Zeros({4, 8})).ok());
}

TEST(ZScoreTest, LargeMeanKeepsUnitVariance) {
  // Monitoring-counter regime: mean ~1e6, true stddev 1. The old
  // E[x^2] - E[x]^2 accumulator cancels nearly every significant bit here
  // and clamps the stddev to the kMinStddev floor; Welford must not.
  // 1e6 +/- 1 are exactly representable floats (spacing 0.0625 at 1e6).
  const int64_t n = 16;
  const int64_t t = 64;
  Tensor x = Tensor::Zeros({n, 1, t});
  float* p = x.data();
  for (int64_t i = 0; i < n * t; ++i) {
    p[i] = 1.0e6f + ((i % 2 == 0) ? 1.0f : -1.0f);
  }
  ZScoreNormalizer norm;
  ASSERT_TRUE(norm.Fit(x).ok());
  EXPECT_NEAR(norm.mean()[0], 1.0e6f, 1e-3f);
  EXPECT_NEAR(norm.stddev()[0], 1.0f, 1e-4f);
  EXPECT_GT(norm.stddev()[0], 1000.0f * kMinStddev);
}

TEST(RollingNormalizerTest, MatchesBatchFitBitwise) {
  Tensor x = MakeData();  // [32, 2, 64]
  ZScoreNormalizer batch;
  ASSERT_TRUE(batch.Fit(x).ok());
  RollingNormalizer rolling(2);
  // Feed the same points in the same order, one [D, T] sample at a time.
  for (int64_t i = 0; i < x.dim(0); ++i) {
    Tensor sample = Tensor::FromVector(
        {2, 64}, std::vector<float>(x.data() + i * 2 * 64,
                                    x.data() + (i + 1) * 2 * 64));
    rolling.UpdateSeries(sample);
  }
  ASSERT_EQ(rolling.count(), x.dim(0) * x.dim(2));
  const std::vector<float> mean = rolling.Mean();
  const std::vector<float> stddev = rolling.Stddev();
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(mean[c], batch.mean()[c]);
    EXPECT_EQ(stddev[c], batch.stddev()[c]);
  }
}

TEST(RollingNormalizerTest, EmptyAccumulatorYieldsFloorStddev) {
  RollingNormalizer rolling(3);
  EXPECT_EQ(rolling.count(), 0);
  for (float sd : rolling.Stddev()) {
    EXPECT_EQ(sd, kMinStddev);
  }
}

TEST(RollingNormalizerTest, SnapshotTransformsLikeFromStats) {
  RollingNormalizer rolling(1);
  const float pts[] = {1.0f, 2.0f, 3.0f, 4.0f};
  for (float v : pts) {
    rolling.Update(&v);
  }
  ZScoreNormalizer snap = rolling.Snapshot();
  ASSERT_TRUE(snap.fitted());
  Tensor x = Tensor::FromVector({1, 1, 2}, {2.5f, 4.0f});
  Tensor z = snap.Transform(x);
  EXPECT_NEAR(z[0], 0.0f, 1e-6f);  // 2.5 is the mean of 1..4
}

using NormalizerDeathTest = ::testing::Test;

TEST(NormalizerDeathTest, ZScoreInverseTransformChecksChannelCount) {
  ZScoreNormalizer norm;
  ASSERT_TRUE(norm.Fit(MakeData()).ok());  // 2 channels
  EXPECT_DEATH(norm.InverseTransform(Tensor::Zeros({1, 3, 8})),
               "CHECK failed");
}

TEST(NormalizerDeathTest, MinMaxTransformChecksChannelCount) {
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(MakeData()).ok());  // 2 channels
  EXPECT_DEATH(norm.Transform(Tensor::Zeros({1, 3, 8})), "CHECK failed");
  EXPECT_DEATH(norm.InverseTransform(Tensor::Zeros({1, 3, 8})),
               "CHECK failed");
}

TEST(ZScoreTest, FromStatsRestoresFittedState) {
  auto norm = ZScoreNormalizer::FromStats({1.0f}, {2.0f});
  EXPECT_TRUE(norm.fitted());
  Tensor x = Tensor::Full({1, 1, 2}, 5.0f);
  Tensor z = norm.Transform(x);
  EXPECT_NEAR(z[0], 2.0f, 1e-6);
}

TEST(MinMaxTest, TransformMapsToUnitInterval) {
  MinMaxNormalizer norm;
  Tensor x = MakeData();
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor z = norm.Transform(x);
  EXPECT_GE(ops::MinAll(z), 0.0f);
  EXPECT_LE(ops::MaxAll(z), 1.0f);
}

TEST(MinMaxTest, InverseRoundTrips) {
  MinMaxNormalizer norm;
  Tensor x = MakeData();
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor back = norm.InverseTransform(norm.Transform(x));
  EXPECT_TRUE(ops::AllClose(back, x, 1e-3f, 1e-3f));
}

TEST(MinMaxTest, ExtremesHitBounds) {
  MinMaxNormalizer norm;
  Tensor x = Tensor::FromVector({1, 1, 4}, {2.0f, 4.0f, 6.0f, 10.0f});
  ASSERT_TRUE(norm.Fit(x).ok());
  Tensor z = norm.Transform(x);
  EXPECT_NEAR(z[0], 0.0f, 1e-6);
  EXPECT_NEAR(z[3], 1.0f, 1e-6);
}

}  // namespace
}  // namespace units::data
