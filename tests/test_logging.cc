#include "base/logging.h"

#include <gtest/gtest.h>

namespace units {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must be cheap no-ops that still compile with stream syntax.
  UNITS_LOG(Debug) << "suppressed " << 1;
  UNITS_LOG(Info) << "suppressed " << 2.5;
  UNITS_LOG(Warning) << "suppressed";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output clean
  UNITS_LOG(Info) << "int=" << 3 << " double=" << 2.5 << " str="
                  << std::string("abc");
  SetLogLevel(original);
}

}  // namespace
}  // namespace units
