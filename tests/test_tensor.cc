#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace units {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);  // rank-0 scalar
  EXPECT_EQ(NumElements({5}), 5);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({2, 0, 4}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZerosInitialized) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, OnesAndFull) {
  Tensor ones = Tensor::Ones({4});
  Tensor full = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ones[i], 1.0f);
    EXPECT_EQ(full[i], 2.5f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_EQ(t.At({0, 2}), 3.0f);
  EXPECT_EQ(t.At({1, 0}), 4.0f);
  EXPECT_EQ(t.At({1, 2}), 6.0f);
}

TEST(TensorTest, ScalarRankZero) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 3.5f);
}

TEST(TensorTest, ArangeValues) {
  Tensor t = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[1], 1.5f);
  EXPECT_EQ(t[3], 2.5f);
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;  // shallow
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 9.0f);
  EXPECT_TRUE(a.SharesStorageWith(b));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a.Clone();
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_FALSE(a.SharesStorageWith(b));
}

TEST(TensorTest, ReshapeSharesStorageAndChecksNumel) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(b.At({2, 1}), 6.0f);
  EXPECT_EQ(b.dim(0), 3);
}

TEST(TensorTest, DimWithNegativeAxis) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, FillAndCopyDataFrom) {
  Tensor a = Tensor::Zeros({4});
  a.Fill(7.0f);
  EXPECT_EQ(a[2], 7.0f);
  Tensor b = Tensor::Zeros({4});
  b.CopyDataFrom(a);
  EXPECT_EQ(b[3], 7.0f);
}

TEST(TensorTest, RandNormalStats) {
  Rng rng(5);
  Tensor t = Tensor::RandNormal({10000}, &rng, 2.0f, 0.5f);
  double sum = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
  }
  EXPECT_NEAR(sum / static_cast<double>(t.numel()), 2.0, 0.05);
}

TEST(TensorTest, RandUniformBounds) {
  Rng rng(6);
  Tensor t = Tensor::RandUniform({1000}, &rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, OffsetRowMajor) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.Offset({0, 0, 0}), 0);
  EXPECT_EQ(t.Offset({0, 0, 3}), 3);
  EXPECT_EQ(t.Offset({0, 1, 0}), 4);
  EXPECT_EQ(t.Offset({1, 0, 0}), 12);
  EXPECT_EQ(t.Offset({1, 2, 3}), 23);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Zeros({100});
  const std::string s = t.ToString(/*max_per_dim=*/4);
  EXPECT_NE(s.find("more"), std::string::npos);
  EXPECT_NE(s.find("Tensor[100]"), std::string::npos);
}

}  // namespace
}  // namespace units
