#include "json/json.h"

#include <cmath>

#include <gtest/gtest.h>

namespace units::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue::Null().is_null());
  EXPECT_TRUE(JsonValue::Bool(true).is_bool());
  EXPECT_TRUE(JsonValue::Number(1.5).is_number());
  EXPECT_TRUE(JsonValue::String("x").is_string());
  EXPECT_TRUE(JsonValue::Array().is_array());
  EXPECT_TRUE(JsonValue::Object().is_object());
}

TEST(JsonValueTest, Accessors) {
  EXPECT_EQ(JsonValue::Bool(true).AsBool(), true);
  EXPECT_EQ(JsonValue::Number(2.5).AsNumber(), 2.5);
  EXPECT_EQ(JsonValue::Int(42).AsInt(), 42);
  EXPECT_EQ(JsonValue::String("abc").AsString(), "abc");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Int(1));
  obj.Set("apple", JsonValue::Int(2));
  ASSERT_EQ(obj.items().size(), 2u);
  EXPECT_EQ(obj.items()[0].first, "zebra");
  EXPECT_EQ(obj.items()[1].first, "apple");
}

TEST(JsonValueTest, SetOverwritesExisting) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  obj.Set("k", JsonValue::Int(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").AsInt(), 2);
}

TEST(JsonValueTest, FindReportsMissing) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Int(1));
  EXPECT_TRUE(obj.Find("a").ok());
  auto missing = obj.Find("b");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(JsonDumpTest, CompactPrimitives) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(7).Dump(), "7");
  EXPECT_EQ(JsonValue::Number(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue::String("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue::String("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonDumpTest, NanBecomesNull) {
  EXPECT_EQ(JsonValue::Number(std::nan("")).Dump(), "null");
}

TEST(JsonDumpTest, NestedStructures) {
  JsonValue obj = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));
  obj.Set("xs", std::move(arr));
  EXPECT_EQ(obj.Dump(), "{\"xs\":[1,2]}");
}

TEST(JsonParseTest, Primitives) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->AsBool(), true);
  EXPECT_EQ(Parse("-3.25")->AsNumber(), -3.25);
  EXPECT_EQ(Parse("\"hey\"")->AsString(), "hey");
  EXPECT_EQ(Parse("1e3")->AsNumber(), 1000.0);
}

TEST(JsonParseTest, ArraysAndObjects) {
  auto v = Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->at("a").size(), 3u);
  EXPECT_EQ(v->at("a")[2].at("b").AsBool(), true);
  EXPECT_EQ(v->at("c").AsString(), "x");
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_EQ(Parse("[]")->size(), 0u);
  EXPECT_EQ(Parse("{}")->size(), 0u);
  EXPECT_EQ(Parse("[ ]")->size(), 0u);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = Parse("  {\n\t\"a\" :  1 ,\n \"b\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at("a").AsInt(), 1);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("line\nbreak \t tab A")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "line\nbreak \t tab A");
}

TEST(JsonParseTest, UnicodeEscapeMultibyte) {
  auto v = Parse("\"\\u00e9\"");  // é -> two-byte UTF-8
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("{\"a\": 1,}").ok());
}

TEST(JsonParseTest, RejectsNonFiniteNumbers) {
  // strtod turns overflowing literals into +/-inf, which Dump would then
  // write as null — a silent round-trip corruption. The parser must reject
  // them with a structured error instead.
  auto big = Parse("1e999");
  EXPECT_FALSE(big.ok());
  EXPECT_NE(big.status().ToString().find("out of range"), std::string::npos);
  EXPECT_FALSE(Parse("-1e999").ok());
  EXPECT_FALSE(Parse("[1, 2, 1e999]").ok());
  EXPECT_FALSE(Parse("{\"v\": -1e400}").ok());
  // Large but finite doubles still parse.
  auto ok = Parse("1e308");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->AsNumber(), 1e308);
  EXPECT_TRUE(Parse("-1.7976931348623157e308").ok());
}

TEST(JsonRoundTripTest, DumpParseIdentity) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::String("units"));
  obj.Set("version", JsonValue::Int(1));
  obj.Set("values", JsonValue::FromFloats({1.5f, -2.25f, 0.0f}));
  JsonValue nested = JsonValue::Object();
  nested.Set("flag", JsonValue::Bool(true));
  obj.Set("nested", std::move(nested));

  for (int indent : {-1, 2}) {
    auto parsed = Parse(obj.Dump(indent));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->at("name").AsString(), "units");
    EXPECT_EQ(parsed->at("version").AsInt(), 1);
    EXPECT_EQ(parsed->at("values").ToFloats(),
              (std::vector<float>{1.5f, -2.25f, 0.0f}));
    EXPECT_EQ(parsed->at("nested").at("flag").AsBool(), true);
  }
}

TEST(JsonRoundTripTest, FloatPrecisionSurvives) {
  const std::vector<float> values = {3.14159274f, -1e-6f, 1e20f, 0.1f};
  auto parsed = Parse(JsonValue::FromFloats(values).Dump());
  ASSERT_TRUE(parsed.ok());
  const auto back = parsed->ToFloats();
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], values[i]);
  }
}

TEST(JsonRoundTripTest, IntVectors) {
  const std::vector<int64_t> values = {0, -5, 123456789};
  auto parsed = Parse(JsonValue::FromInts(values).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToInts(), values);
}

TEST(JsonFileTest, WriteAndParseFile) {
  const std::string path = ::testing::TempDir() + "/units_test.json";
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(7));
  ASSERT_TRUE(WriteFile(path, obj).ok());
  auto loaded = ParseFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->at("k").AsInt(), 7);
}

TEST(JsonFileTest, MissingFileIsIoError) {
  auto result = ParseFile("/nonexistent/path.json");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace units::json
