#include "nn/gru.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/encoder_factory.h"
#include "core/pretrain/templates.h"
#include "tensor/tensor_ops.h"

namespace units::nn {
namespace {

namespace ag = ::units::autograd;

TEST(GruBackboneTest, OutputShape) {
  Rng rng(1);
  GruBackbone gru(3, 8, 12, &rng);
  Variable x(Tensor::RandNormal({2, 3, 10}, &rng));
  Variable y = gru.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 12, 10}));
  EXPECT_FALSE(ops::HasNonFinite(y.data()));
}

TEST(GruBackboneTest, CausalByConstruction) {
  // Perturbing a future timestep must not change earlier outputs.
  Rng rng(2);
  GruBackbone gru(1, 6, 6, &rng);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::RandNormal({1, 1, 12}, &rng);
  Tensor y1 = gru.Forward(Variable(x)).data();
  Tensor x2 = x.Clone();
  x2.At({0, 0, 8}) += 3.0f;
  Tensor y2 = gru.Forward(Variable(x2)).data();
  for (int64_t k = 0; k < 6; ++k) {
    for (int64_t t = 0; t < 8; ++t) {
      EXPECT_EQ(y1.At({0, k, t}), y2.At({0, k, t})) << "leak at t=" << t;
    }
    EXPECT_NE(y1.At({0, k, 8}), y2.At({0, k, 8}));
  }
}

TEST(GruBackboneTest, GradientsReachAllParameters) {
  Rng rng(3);
  GruBackbone gru(2, 4, 4, &rng);
  Variable x(Tensor::RandNormal({2, 2, 6}, &rng), true);
  ag::MeanAll(ag::Square(gru.Forward(x))).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const auto& [name, p] : gru.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

TEST(GruBackboneTest, StatePropagatesInformation) {
  // An impulse at t=0 influences outputs at later timesteps (memory).
  Rng rng(4);
  GruBackbone gru(1, 8, 8, &rng);
  ag::NoGradGuard no_grad;
  Tensor zero = Tensor::Zeros({1, 1, 10});
  Tensor impulse = Tensor::Zeros({1, 1, 10});
  impulse.At({0, 0, 0}) = 5.0f;
  Tensor y0 = gru.Forward(Variable(zero)).data();
  Tensor y1 = gru.Forward(Variable(impulse)).data();
  Tensor late0 = ops::Slice(y0, 2, 7, 3);
  Tensor late1 = ops::Slice(y1, 2, 7, 3);
  EXPECT_GT(ops::L2Distance(late0, late1), 1e-4f);
}

TEST(GruBackboneTest, FactoryBuildsGru) {
  hpo::ParamSet params;
  params.SetString("backbone", "gru");
  params.SetInt("hidden_channels", 8);
  params.SetInt("repr_dim", 10);
  Rng rng(5);
  auto handle = core::BuildEncoder(params, 2, &rng);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->backbone, "gru");
  EXPECT_EQ(handle->repr_dim, 10);
  Variable x(Tensor::RandNormal({2, 2, 8}, &rng));
  EXPECT_EQ(handle->module->Forward(x).shape(), (Shape{2, 10, 8}));
}

TEST(GruBackboneTest, WorksAsTemplateBackbone) {
  hpo::ParamSet params;
  params.SetString("backbone", "gru");
  params.SetInt("hidden_channels", 6);
  params.SetInt("repr_dim", 8);
  params.SetInt("epochs", 2);
  params.SetInt("batch_size", 8);
  core::WholeSeriesContrastive tmpl(params, 2, 7);
  Rng rng(8);
  Tensor x = Tensor::RandNormal({12, 2, 16}, &rng);
  ASSERT_TRUE(tmpl.Fit(x).ok());
  Tensor z = tmpl.Transform(x);
  EXPECT_EQ(z.shape(), (Shape{12, 8}));
  EXPECT_FALSE(ops::HasNonFinite(z));
}

}  // namespace
}  // namespace units::nn
