#include "base/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace units {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // every residue hit over 1000 draws
}

TEST(RngTest, UniformIntSignedRangeInclusive) {
  Rng rng(19);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(37);
  const auto perm = rng.Permutation(50);
  std::set<int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(43);
  b.NextUint64();  // align with the draw Fork consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += forked.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace units
