#include <cmath>

#include <gtest/gtest.h>

#include "hpo/bayes_opt.h"
#include "hpo/gp.h"
#include "hpo/param_space.h"
#include "hpo/random_search.h"

namespace units::hpo {
namespace {

TEST(ParamSetTest, TypedGettersWithFallbacks) {
  ParamSet p;
  p.SetDouble("lr", 0.01);
  p.SetInt("epochs", 5);
  p.SetString("mode", "fast");
  EXPECT_EQ(p.GetDouble("lr", 1.0), 0.01);
  EXPECT_EQ(p.GetInt("epochs", 0), 5);
  EXPECT_EQ(p.GetString("mode", "x"), "fast");
  EXPECT_EQ(p.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(p.GetInt("missing", 7), 7);
  EXPECT_EQ(p.GetString("missing", "d"), "d");
}

TEST(ParamSetTest, CrossTypeCoercion) {
  ParamSet p;
  p.SetInt("k", 3);
  p.SetDouble("x", 2.7);
  EXPECT_EQ(p.GetDouble("k", 0.0), 3.0);
  EXPECT_EQ(p.GetInt("x", 0), 3);  // rounds
}

TEST(ParamSetTest, MergedWithOverrides) {
  ParamSet base;
  base.SetInt("a", 1);
  base.SetInt("b", 2);
  ParamSet overlay;
  overlay.SetInt("b", 20);
  overlay.SetInt("c", 30);
  ParamSet merged = base.MergedWith(overlay);
  EXPECT_EQ(merged.GetInt("a", 0), 1);
  EXPECT_EQ(merged.GetInt("b", 0), 20);
  EXPECT_EQ(merged.GetInt("c", 0), 30);
}

TEST(ParamSpaceTest, SampleRespectsBounds) {
  ParamSpace space;
  space.AddDouble("lr", 1e-4, 1e-1, /*log_scale=*/true)
      .AddInt("layers", 1, 5)
      .AddCategorical("act", {"relu", "gelu", "tanh"});
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    ParamSet s = space.Sample(&rng);
    const double lr = s.GetDouble("lr", -1);
    EXPECT_GE(lr, 1e-4);
    EXPECT_LE(lr, 1e-1);
    const int64_t layers = s.GetInt("layers", -1);
    EXPECT_GE(layers, 1);
    EXPECT_LE(layers, 5);
    const std::string act = s.GetString("act", "");
    EXPECT_TRUE(act == "relu" || act == "gelu" || act == "tanh");
  }
}

TEST(ParamSpaceTest, LogScaleCoversDecades) {
  ParamSpace space;
  space.AddDouble("lr", 1e-5, 1e-1, true);
  Rng rng(2);
  int small = 0;
  for (int i = 0; i < 1000; ++i) {
    if (space.Sample(&rng).GetDouble("lr", 1) < 1e-3) {
      ++small;
    }
  }
  // Log-uniform: half the draws below the geometric midpoint 1e-3.
  EXPECT_NEAR(small / 1000.0, 0.5, 0.06);
}

TEST(ParamSpaceTest, UnitVectorRoundTrip) {
  ParamSpace space;
  space.AddDouble("x", 0.0, 10.0)
      .AddInt("k", 0, 4)
      .AddCategorical("c", {"a", "b", "c"});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    ParamSet s = space.Sample(&rng);
    ParamSet back = space.FromUnitVector(space.ToUnitVector(s));
    EXPECT_NEAR(back.GetDouble("x", -1), s.GetDouble("x", -2), 1e-9);
    EXPECT_EQ(back.GetInt("k", -1), s.GetInt("k", -2));
    EXPECT_EQ(back.GetString("c", "?"), s.GetString("c", "!"));
  }
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GaussianProcess gp(0.3, 1e-6);
  const std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}};
  const std::vector<double> y = {1.0, 2.0, 0.5};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    const auto pred = gp.Predict(x[i]);
    EXPECT_NEAR(pred.mean, y[i], 0.05);
    EXPECT_LT(pred.variance, 0.05);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(0.1, 1e-6);
  ASSERT_TRUE(gp.Fit({{0.2}, {0.3}}, {1.0, 1.2}).ok());
  const auto near = gp.Predict({0.25});
  const auto far = gp.Predict({0.9});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GpTest, RejectsEmptyOrMismatched) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}}, {1.0, 2.0}).ok());
}

TEST(GpTest, SmoothPredictionBetweenPoints) {
  GaussianProcess gp(0.5, 1e-6);
  ASSERT_TRUE(gp.Fit({{0.0}, {1.0}}, {0.0, 1.0}).ok());
  const auto mid = gp.Predict({0.5});
  EXPECT_GT(mid.mean, 0.2);
  EXPECT_LT(mid.mean, 0.8);
}

TEST(RandomSearchTest, TracksBest) {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0);
  RandomSearch search(&space, 4);
  for (int i = 0; i < 20; ++i) {
    ParamSet p = search.Propose();
    Trial t;
    t.params = p;
    const double x = p.GetDouble("x", 0);
    t.objective = -(x - 0.3) * (x - 0.3);
    search.Observe(t);
  }
  EXPECT_NEAR(search.Best().params.GetDouble("x", 0), 0.3, 0.25);
  EXPECT_EQ(search.history().size(), 20u);
}

/// 2-D objective with optimum at (0.7, 0.2); higher is better.
double ToyObjective(const ParamSet& p) {
  const double x = p.GetDouble("x", 0);
  const double y = p.GetDouble("y", 0);
  return -((x - 0.7) * (x - 0.7) + (y - 0.2) * (y - 0.2));
}

TEST(BayesOptTest, ImprovesOverInitialRandomPhase) {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0).AddDouble("y", 0.0, 1.0);
  BayesOptOptions options;
  options.initial_random_trials = 5;
  options.acquisition_samples = 256;
  BayesianOptimizer bo(&space, 7, options);
  double best_random_phase = -1e9;
  double best_final = -1e9;
  for (int i = 0; i < 25; ++i) {
    ParamSet p = bo.Propose();
    Trial t;
    t.params = p;
    t.objective = ToyObjective(p);
    bo.Observe(t);
    if (i < 5) {
      best_random_phase = std::max(best_random_phase, t.objective);
    }
    best_final = std::max(best_final, t.objective);
  }
  EXPECT_GT(best_final, best_random_phase);
  EXPECT_GT(best_final, -0.02);  // within ~0.14 of the optimum
}

TEST(BayesOptTest, BeatsRandomSearchOnAverage) {
  ParamSpace space;
  space.AddDouble("x", 0.0, 1.0).AddDouble("y", 0.0, 1.0);
  double bo_total = 0.0;
  double rs_total = 0.0;
  const int kBudget = 20;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    BayesianOptimizer bo(&space, seed + 100);
    RandomSearch rs(&space, seed + 100);
    for (int i = 0; i < kBudget; ++i) {
      for (HpOptimizer* opt : {static_cast<HpOptimizer*>(&bo),
                               static_cast<HpOptimizer*>(&rs)}) {
        ParamSet p = opt->Propose();
        Trial t;
        t.params = p;
        t.objective = ToyObjective(p);
        opt->Observe(t);
      }
    }
    bo_total += bo.Best().objective;
    rs_total += rs.Best().objective;
  }
  EXPECT_GE(bo_total, rs_total - 0.01);
}

}  // namespace
}  // namespace units::hpo
