#include "data/dataset.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace units::data {
namespace {

TimeSeriesDataset MakeLabeled(int64_t n, int64_t classes) {
  Tensor values = Tensor::Zeros({n, 2, 8});
  for (int64_t i = 0; i < values.numel(); ++i) {
    values[i] = static_cast<float>(i);
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % classes;
  }
  return TimeSeriesDataset(std::move(values), std::move(labels));
}

TEST(DatasetTest, DimensionsAndLabels) {
  auto ds = MakeLabeled(12, 3);
  EXPECT_EQ(ds.num_samples(), 12);
  EXPECT_EQ(ds.num_channels(), 2);
  EXPECT_EQ(ds.length(), 8);
  EXPECT_TRUE(ds.has_labels());
  EXPECT_EQ(ds.NumClasses(), 3);
}

TEST(DatasetTest, UnlabeledHasNoClasses) {
  TimeSeriesDataset ds(Tensor::Zeros({4, 1, 8}));
  EXPECT_FALSE(ds.has_labels());
  EXPECT_EQ(ds.NumClasses(), 0);
}

TEST(DatasetTest, SubsetCopiesRowsAndLabels) {
  auto ds = MakeLabeled(10, 2);
  auto sub = ds.Subset({1, 3, 5});
  EXPECT_EQ(sub.num_samples(), 3);
  EXPECT_EQ(sub.labels()[0], 1);
  EXPECT_EQ(sub.labels()[1], 1);
  // First element of row 3 in the original is 3*2*8 = 48.
  EXPECT_EQ(sub.values().At({1, 0, 0}), 48.0f);
}

TEST(DatasetTest, SubsetCarriesTargetsAndPointLabels) {
  auto ds = MakeLabeled(4, 2);
  ds.set_targets(Tensor::Full({4, 2, 3}, 7.0f));
  ds.set_point_labels(Tensor::Full({4, 8}, 1.0f));
  auto sub = ds.Subset({0, 2});
  EXPECT_TRUE(sub.has_targets());
  EXPECT_EQ(sub.targets().dim(0), 2);
  EXPECT_TRUE(sub.has_point_labels());
  EXPECT_EQ(sub.point_labels().dim(0), 2);
}

TEST(DatasetTest, TrainTestSplitPartitionsAll) {
  auto ds = MakeLabeled(20, 4);
  Rng rng(1);
  auto [train, test] = ds.TrainTestSplit(0.5, &rng);
  EXPECT_EQ(train.num_samples() + test.num_samples(), 20);
  // 5 per class, fraction 0.5 -> round(2.5) = 3 per class in train.
  EXPECT_EQ(train.num_samples(), 12);
}

TEST(DatasetTest, TrainTestSplitIsStratified) {
  auto ds = MakeLabeled(40, 4);
  Rng rng(2);
  auto [train, test] = ds.TrainTestSplit(0.75, &rng);
  std::map<int64_t, int64_t> counts;
  for (int64_t label : train.labels()) {
    ++counts[label];
  }
  for (const auto& [cls, count] : counts) {
    // 10 per class, fraction 0.75 -> round(7.5) = 8 in train.
    EXPECT_EQ(count, 8) << "class " << cls;
  }
}

TEST(DatasetTest, SplitKeepsEveryClassOnBothSides) {
  auto ds = MakeLabeled(8, 4);  // only 2 per class
  Rng rng(3);
  auto [train, test] = ds.TrainTestSplit(0.5, &rng);
  EXPECT_EQ(train.NumClasses(), 4);
  EXPECT_EQ(test.NumClasses(), 4);
}

TEST(DatasetTest, PartialLabelSplitSizes) {
  auto ds = MakeLabeled(40, 4);
  Rng rng(4);
  auto [labeled, unlabeled] = ds.PartialLabelSplit(0.25, &rng);
  // 10 per class, fraction 0.25 -> round(2.5) = 3 per class.
  EXPECT_EQ(labeled.num_samples(), 12);
  EXPECT_TRUE(labeled.has_labels());
  EXPECT_EQ(unlabeled.num_samples(), 40);
  EXPECT_FALSE(unlabeled.has_labels());
}

TEST(DatasetTest, PartialLabelSplitKeepsAtLeastOnePerClass) {
  auto ds = MakeLabeled(40, 4);
  Rng rng(5);
  auto [labeled, unlabeled] = ds.PartialLabelSplit(0.01, &rng);
  EXPECT_EQ(labeled.NumClasses(), 4);
  EXPECT_GE(labeled.num_samples(), 4);
}

TEST(DatasetTest, DescriptionMentionsShape) {
  auto ds = MakeLabeled(12, 3);
  const std::string desc = ds.Description();
  EXPECT_NE(desc.find("N=12"), std::string::npos);
  EXPECT_NE(desc.find("classes=3"), std::string::npos);
}

}  // namespace
}  // namespace units::data
