# Empty dependencies file for har_classification.
# This may be replaced when dependencies are built.
