file(REMOVE_RECURSE
  "CMakeFiles/har_classification.dir/har_classification.cpp.o"
  "CMakeFiles/har_classification.dir/har_classification.cpp.o.d"
  "har_classification"
  "har_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
