file(REMOVE_RECURSE
  "CMakeFiles/server_monitoring_anomaly.dir/server_monitoring_anomaly.cpp.o"
  "CMakeFiles/server_monitoring_anomaly.dir/server_monitoring_anomaly.cpp.o.d"
  "server_monitoring_anomaly"
  "server_monitoring_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_monitoring_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
