# Empty dependencies file for server_monitoring_anomaly.
# This may be replaced when dependencies are built.
