file(REMOVE_RECURSE
  "CMakeFiles/missing_data_imputation.dir/missing_data_imputation.cpp.o"
  "CMakeFiles/missing_data_imputation.dir/missing_data_imputation.cpp.o.d"
  "missing_data_imputation"
  "missing_data_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_data_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
