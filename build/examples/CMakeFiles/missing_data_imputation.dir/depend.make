# Empty dependencies file for missing_data_imputation.
# This may be replaced when dependencies are built.
