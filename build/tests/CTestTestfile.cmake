# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/units_tests[1]_include.cmake")
add_test(cli_workflow "/root/repo/tests/cli_workflow.sh" "/root/repo/build/tools/units_cli")
set_tests_properties(cli_workflow PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
