
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attention.cc" "tests/CMakeFiles/units_tests.dir/test_attention.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_attention.cc.o.d"
  "/root/repo/tests/test_augment.cc" "tests/CMakeFiles/units_tests.dir/test_augment.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_augment.cc.o.d"
  "/root/repo/tests/test_autograd.cc" "tests/CMakeFiles/units_tests.dir/test_autograd.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_autograd.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/units_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_contracts.cc" "tests/CMakeFiles/units_tests.dir/test_contracts.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_contracts.cc.o.d"
  "/root/repo/tests/test_conv_reference.cc" "tests/CMakeFiles/units_tests.dir/test_conv_reference.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_conv_reference.cc.o.d"
  "/root/repo/tests/test_csv.cc" "tests/CMakeFiles/units_tests.dir/test_csv.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_csv.cc.o.d"
  "/root/repo/tests/test_dataloader.cc" "tests/CMakeFiles/units_tests.dir/test_dataloader.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_dataloader.cc.o.d"
  "/root/repo/tests/test_dataset.cc" "tests/CMakeFiles/units_tests.dir/test_dataset.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_dataset.cc.o.d"
  "/root/repo/tests/test_evaluate.cc" "tests/CMakeFiles/units_tests.dir/test_evaluate.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_evaluate.cc.o.d"
  "/root/repo/tests/test_fft.cc" "tests/CMakeFiles/units_tests.dir/test_fft.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_fft.cc.o.d"
  "/root/repo/tests/test_fusion.cc" "tests/CMakeFiles/units_tests.dir/test_fusion.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_fusion.cc.o.d"
  "/root/repo/tests/test_grad_check.cc" "tests/CMakeFiles/units_tests.dir/test_grad_check.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_grad_check.cc.o.d"
  "/root/repo/tests/test_gru.cc" "tests/CMakeFiles/units_tests.dir/test_gru.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_gru.cc.o.d"
  "/root/repo/tests/test_hpo.cc" "tests/CMakeFiles/units_tests.dir/test_hpo.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_hpo.cc.o.d"
  "/root/repo/tests/test_json.cc" "tests/CMakeFiles/units_tests.dir/test_json.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_json.cc.o.d"
  "/root/repo/tests/test_kmeans.cc" "tests/CMakeFiles/units_tests.dir/test_kmeans.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_kmeans.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/units_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/units_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_nn.cc" "tests/CMakeFiles/units_tests.dir/test_nn.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_nn.cc.o.d"
  "/root/repo/tests/test_normalize.cc" "tests/CMakeFiles/units_tests.dir/test_normalize.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_normalize.cc.o.d"
  "/root/repo/tests/test_optim.cc" "tests/CMakeFiles/units_tests.dir/test_optim.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_optim.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/units_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_registry.cc" "tests/CMakeFiles/units_tests.dir/test_registry.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_registry.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/units_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/units_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/units_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_string_util.cc" "tests/CMakeFiles/units_tests.dir/test_string_util.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_string_util.cc.o.d"
  "/root/repo/tests/test_synthetic.cc" "tests/CMakeFiles/units_tests.dir/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_synthetic.cc.o.d"
  "/root/repo/tests/test_tasks.cc" "tests/CMakeFiles/units_tests.dir/test_tasks.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_tasks.cc.o.d"
  "/root/repo/tests/test_templates.cc" "tests/CMakeFiles/units_tests.dir/test_templates.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_templates.cc.o.d"
  "/root/repo/tests/test_tensor.cc" "tests/CMakeFiles/units_tests.dir/test_tensor.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_tensor.cc.o.d"
  "/root/repo/tests/test_tensor_ops.cc" "tests/CMakeFiles/units_tests.dir/test_tensor_ops.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_tensor_ops.cc.o.d"
  "/root/repo/tests/test_window.cc" "tests/CMakeFiles/units_tests.dir/test_window.cc.o" "gcc" "tests/CMakeFiles/units_tests.dir/test_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
