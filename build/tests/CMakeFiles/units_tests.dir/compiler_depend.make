# Empty compiler generated dependencies file for units_tests.
# This may be replaced when dependencies are built.
