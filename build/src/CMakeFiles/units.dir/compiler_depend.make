# Empty compiler generated dependencies file for units.
# This may be replaced when dependencies are built.
