file(REMOVE_RECURSE
  "libunits.a"
)
