
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augment/augment.cc" "src/CMakeFiles/units.dir/augment/augment.cc.o" "gcc" "src/CMakeFiles/units.dir/augment/augment.cc.o.d"
  "/root/repo/src/autograd/grad_check.cc" "src/CMakeFiles/units.dir/autograd/grad_check.cc.o" "gcc" "src/CMakeFiles/units.dir/autograd/grad_check.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/units.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/units.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/units.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/units.dir/autograd/variable.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/units.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/units.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/units.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/units.dir/base/rng.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/units.dir/base/status.cc.o" "gcc" "src/CMakeFiles/units.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/units.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/units.dir/base/string_util.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/units.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/units.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/units.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/units.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/encoder_factory.cc" "src/CMakeFiles/units.dir/core/encoder_factory.cc.o" "gcc" "src/CMakeFiles/units.dir/core/encoder_factory.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/units.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/units.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/evaluate.cc" "src/CMakeFiles/units.dir/core/evaluate.cc.o" "gcc" "src/CMakeFiles/units.dir/core/evaluate.cc.o.d"
  "/root/repo/src/core/fusion.cc" "src/CMakeFiles/units.dir/core/fusion.cc.o" "gcc" "src/CMakeFiles/units.dir/core/fusion.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/units.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/pretrain/hybrid.cc" "src/CMakeFiles/units.dir/core/pretrain/hybrid.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/hybrid.cc.o.d"
  "/root/repo/src/core/pretrain/masked_autoregression.cc" "src/CMakeFiles/units.dir/core/pretrain/masked_autoregression.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/masked_autoregression.cc.o.d"
  "/root/repo/src/core/pretrain/pretrain_base.cc" "src/CMakeFiles/units.dir/core/pretrain/pretrain_base.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/pretrain_base.cc.o.d"
  "/root/repo/src/core/pretrain/subsequence_contrastive.cc" "src/CMakeFiles/units.dir/core/pretrain/subsequence_contrastive.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/subsequence_contrastive.cc.o.d"
  "/root/repo/src/core/pretrain/timestamp_contrastive.cc" "src/CMakeFiles/units.dir/core/pretrain/timestamp_contrastive.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/timestamp_contrastive.cc.o.d"
  "/root/repo/src/core/pretrain/whole_series_contrastive.cc" "src/CMakeFiles/units.dir/core/pretrain/whole_series_contrastive.cc.o" "gcc" "src/CMakeFiles/units.dir/core/pretrain/whole_series_contrastive.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/units.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/units.dir/core/registry.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/units.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/units.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/tasks/anomaly.cc" "src/CMakeFiles/units.dir/core/tasks/anomaly.cc.o" "gcc" "src/CMakeFiles/units.dir/core/tasks/anomaly.cc.o.d"
  "/root/repo/src/core/tasks/classification.cc" "src/CMakeFiles/units.dir/core/tasks/classification.cc.o" "gcc" "src/CMakeFiles/units.dir/core/tasks/classification.cc.o.d"
  "/root/repo/src/core/tasks/clustering.cc" "src/CMakeFiles/units.dir/core/tasks/clustering.cc.o" "gcc" "src/CMakeFiles/units.dir/core/tasks/clustering.cc.o.d"
  "/root/repo/src/core/tasks/forecasting.cc" "src/CMakeFiles/units.dir/core/tasks/forecasting.cc.o" "gcc" "src/CMakeFiles/units.dir/core/tasks/forecasting.cc.o.d"
  "/root/repo/src/core/tasks/imputation.cc" "src/CMakeFiles/units.dir/core/tasks/imputation.cc.o" "gcc" "src/CMakeFiles/units.dir/core/tasks/imputation.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/units.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/units.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/units.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/units.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/units.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/units.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/normalize.cc" "src/CMakeFiles/units.dir/data/normalize.cc.o" "gcc" "src/CMakeFiles/units.dir/data/normalize.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/units.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/units.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/window.cc" "src/CMakeFiles/units.dir/data/window.cc.o" "gcc" "src/CMakeFiles/units.dir/data/window.cc.o.d"
  "/root/repo/src/hpo/bayes_opt.cc" "src/CMakeFiles/units.dir/hpo/bayes_opt.cc.o" "gcc" "src/CMakeFiles/units.dir/hpo/bayes_opt.cc.o.d"
  "/root/repo/src/hpo/gp.cc" "src/CMakeFiles/units.dir/hpo/gp.cc.o" "gcc" "src/CMakeFiles/units.dir/hpo/gp.cc.o.d"
  "/root/repo/src/hpo/param_space.cc" "src/CMakeFiles/units.dir/hpo/param_space.cc.o" "gcc" "src/CMakeFiles/units.dir/hpo/param_space.cc.o.d"
  "/root/repo/src/hpo/random_search.cc" "src/CMakeFiles/units.dir/hpo/random_search.cc.o" "gcc" "src/CMakeFiles/units.dir/hpo/random_search.cc.o.d"
  "/root/repo/src/json/json.cc" "src/CMakeFiles/units.dir/json/json.cc.o" "gcc" "src/CMakeFiles/units.dir/json/json.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/units.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/units.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/units.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/units.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/conv1d.cc" "src/CMakeFiles/units.dir/nn/conv1d.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/conv1d.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/units.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/CMakeFiles/units.dir/nn/gru.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/gru.cc.o.d"
  "/root/repo/src/nn/heads.cc" "src/CMakeFiles/units.dir/nn/heads.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/heads.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/units.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/units.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/CMakeFiles/units.dir/nn/norm.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/norm.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/units.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/sequential.cc.o.d"
  "/root/repo/src/nn/tcn.cc" "src/CMakeFiles/units.dir/nn/tcn.cc.o" "gcc" "src/CMakeFiles/units.dir/nn/tcn.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/units.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/units.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/optim/schedule.cc" "src/CMakeFiles/units.dir/optim/schedule.cc.o" "gcc" "src/CMakeFiles/units.dir/optim/schedule.cc.o.d"
  "/root/repo/src/tensor/fft.cc" "src/CMakeFiles/units.dir/tensor/fft.cc.o" "gcc" "src/CMakeFiles/units.dir/tensor/fft.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/units.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/units.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/units.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/units.dir/tensor/tensor_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
