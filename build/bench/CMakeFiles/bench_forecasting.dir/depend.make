# Empty dependencies file for bench_forecasting.
# This may be replaced when dependencies are built.
