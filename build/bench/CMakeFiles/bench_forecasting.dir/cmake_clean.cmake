file(REMOVE_RECURSE
  "CMakeFiles/bench_forecasting.dir/bench_forecasting.cc.o"
  "CMakeFiles/bench_forecasting.dir/bench_forecasting.cc.o.d"
  "bench_forecasting"
  "bench_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
