file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_shift.dir/bench_domain_shift.cc.o"
  "CMakeFiles/bench_domain_shift.dir/bench_domain_shift.cc.o.d"
  "bench_domain_shift"
  "bench_domain_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
