# Empty dependencies file for bench_domain_shift.
# This may be replaced when dependencies are built.
