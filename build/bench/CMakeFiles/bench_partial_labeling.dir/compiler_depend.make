# Empty compiler generated dependencies file for bench_partial_labeling.
# This may be replaced when dependencies are built.
