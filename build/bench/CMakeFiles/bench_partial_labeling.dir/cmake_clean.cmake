file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_labeling.dir/bench_partial_labeling.cc.o"
  "CMakeFiles/bench_partial_labeling.dir/bench_partial_labeling.cc.o.d"
  "bench_partial_labeling"
  "bench_partial_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
