file(REMOVE_RECURSE
  "CMakeFiles/bench_hpo.dir/bench_hpo.cc.o"
  "CMakeFiles/bench_hpo.dir/bench_hpo.cc.o.d"
  "bench_hpo"
  "bench_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
