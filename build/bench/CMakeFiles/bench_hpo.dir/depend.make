# Empty dependencies file for bench_hpo.
# This may be replaced when dependencies are built.
