# Empty dependencies file for units_cli.
# This may be replaced when dependencies are built.
