file(REMOVE_RECURSE
  "CMakeFiles/units_cli.dir/units_cli.cc.o"
  "CMakeFiles/units_cli.dir/units_cli.cc.o.d"
  "units_cli"
  "units_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/units_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
