// units_cli — command-line front end for the UniTS pipeline, the
// reproduction's stand-in for the paper's web GUI (Figure 2b): the same
// pre-train / fine-tune / predict workflow, driven without writing code.
//
//   units_cli list
//   units_cli pretrain --data series.csv --format long --window 96
//             --templates whole_series_contrastive,masked_autoregression
//             --out model.json [--set epochs=20] ...
//   units_cli finetune --model model.json --data labeled.csv --format ucr
//             --task classification --out fitted.json [--set epochs=10]
//   units_cli predict  --model fitted.json --data test.csv --format ucr
//             [--out predictions.csv]
//   units_cli info     --model fitted.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/string_util.h"
#include "core/pipeline.h"
#include "core/registry.h"
#include "data/csv.h"
#include "data/window.h"
#include "json/json.h"

namespace units::cli {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;     // --name value
  std::vector<std::string> set_params;          // --set k=v (repeatable)
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (!StartsWith(flag, "--")) {
      continue;
    }
    flag = flag.substr(2);
    std::string value;
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      value = argv[++i];
    }
    if (flag == "set") {
      args.set_params.push_back(value);
    } else {
      args.flags[flag] = value;
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& name,
                   const std::string& fallback) {
  auto it = args.flags.find(name);
  return it == args.flags.end() ? fallback : it->second;
}

Status RequireFlag(const Args& args, const std::string& name) {
  if (args.flags.count(name) == 0 || args.flags.at(name).empty()) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::Ok();
}

/// Strict numeric flag parsing: the whole value must be an integer.
/// (std::stoll would throw on garbage and take "12abc" as 12.)
Result<int64_t> IntFlagOr(const Args& args, const std::string& name,
                          int64_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end() || it->second.empty()) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got " +
                                   it->second);
  }
  return static_cast<int64_t>(v);
}

/// Parses repeated --set k=v pairs, inferring int / double / string.
Result<hpo::ParamSet> ParseSetParams(const Args& args) {
  hpo::ParamSet params;
  for (const std::string& kv : args.set_params) {
    const auto parts = StrSplit(kv, '=');
    if (parts.size() != 2 || parts[0].empty()) {
      return Status::InvalidArgument("--set expects key=value, got " + kv);
    }
    const std::string& key = parts[0];
    const std::string& value = parts[1];
    char* end = nullptr;
    const long long as_int = std::strtoll(value.c_str(), &end, 10);
    if (end != value.c_str() && *end == '\0') {
      params.SetInt(key, as_int);
      continue;
    }
    const double as_double = std::strtod(value.c_str(), &end);
    if (end != value.c_str() && *end == '\0') {
      params.SetDouble(key, as_double);
      continue;
    }
    params.SetString(key, value);
  }
  return params;
}

/// Loads a dataset according to --format: "ucr" (label, v1..vT rows) or
/// "long" (rows = timesteps, columns = channels; sliced into windows).
Result<data::TimeSeriesDataset> LoadData(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "data"));
  const std::string path = args.flags.at("data");
  const std::string format = FlagOr(args, "format", "ucr");
  if (format == "ucr") {
    return data::LoadUcrStyleCsv(path);
  }
  if (format == "long") {
    UNITS_ASSIGN_OR_RETURN(Tensor series,
                           data::LoadCsvSeries(path, /*has_header=*/
                                               FlagOr(args, "header", "0") ==
                                                   "1"));
    UNITS_ASSIGN_OR_RETURN(const int64_t window,
                           IntFlagOr(args, "window", 96));
    UNITS_ASSIGN_OR_RETURN(const int64_t stride,
                           IntFlagOr(args, "stride", window / 2));
    if (window < 1 || stride < 1) {
      return Status::InvalidArgument("--window and --stride must be >= 1");
    }
    return data::TimeSeriesDataset(
        data::SlidingWindows(series, window, stride));
  }
  return Status::InvalidArgument("unknown --format " + format +
                                 " (use ucr|long)");
}

int CmdList() {
  std::printf("pre-training templates:\n");
  for (const auto& name : core::RegisteredPretrainTemplates()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("fusion methods:\n");
  for (const auto& name : core::RegisteredFusions()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("analysis tasks:\n");
  for (const auto& name : core::RegisteredTasks()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

Status CmdPretrain(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "out"));
  UNITS_ASSIGN_OR_RETURN(data::TimeSeriesDataset dataset, LoadData(args));
  UNITS_ASSIGN_OR_RETURN(hpo::ParamSet params, ParseSetParams(args));

  core::UnitsPipeline::Config config;
  config.templates.clear();
  for (const std::string& name :
       StrSplit(FlagOr(args, "templates", "whole_series_contrastive"),
                ',')) {
    if (!name.empty()) {
      config.templates.push_back(name);
    }
  }
  config.fusion = FlagOr(args, "fusion", "concat");
  config.task = FlagOr(args, "task", "");
  config.mode = core::ConfigMode::kManual;
  config.pretrain_params = params;
  UNITS_ASSIGN_OR_RETURN(const int64_t seed, IntFlagOr(args, "seed", 42));
  config.seed = static_cast<uint64_t>(seed);

  UNITS_ASSIGN_OR_RETURN(
      std::unique_ptr<core::UnitsPipeline> pipeline,
      core::UnitsPipeline::Create(config, dataset.num_channels()));
  std::printf("pre-training on %s\n", dataset.Description().c_str());
  UNITS_RETURN_IF_ERROR(pipeline->Pretrain(dataset.values()));
  const auto curves = pipeline->PretrainLossCurves();
  for (size_t m = 0; m < curves.size(); ++m) {
    std::printf("template %zu (%s): loss %.4f -> %.4f over %zu epochs\n", m,
                config.templates[m].c_str(), curves[m].front(),
                curves[m].back(), curves[m].size());
  }
  UNITS_RETURN_IF_ERROR(pipeline->SaveJson(args.flags.at("out")));
  std::printf("saved %s\n", args.flags.at("out").c_str());
  return Status::Ok();
}

Status CmdFinetune(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "model"));
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "out"));
  UNITS_ASSIGN_OR_RETURN(data::TimeSeriesDataset dataset, LoadData(args));
  UNITS_ASSIGN_OR_RETURN(hpo::ParamSet params, ParseSetParams(args));

  UNITS_ASSIGN_OR_RETURN(std::unique_ptr<core::UnitsPipeline> pipeline,
                         core::UnitsPipeline::LoadJson(
                             args.flags.at("model")));
  const std::string task = FlagOr(args, "task", "");
  if (!task.empty()) {
    hpo::ParamSet task_params =
        pipeline->finetune_params().MergedWith(params);
    if (dataset.has_labels()) {
      task_params.SetInt("num_classes", dataset.NumClasses());
      task_params.SetInt("num_clusters", dataset.NumClasses());
    }
    UNITS_ASSIGN_OR_RETURN(std::unique_ptr<core::AnalysisTask> task_obj,
                           core::MakeTask(task, task_params));
    pipeline->SetTask(std::move(task_obj));
  }
  pipeline->SetFineTuneParams(
      pipeline->finetune_params().MergedWith(params));
  std::printf("fine-tuning on %s\n", dataset.Description().c_str());
  UNITS_RETURN_IF_ERROR(pipeline->FineTune(dataset));
  if (pipeline->task() != nullptr &&
      !pipeline->task()->loss_history().empty()) {
    const auto& history = pipeline->task()->loss_history();
    std::printf("fine-tune loss %.4f -> %.4f over %zu epochs\n",
                history.front(), history.back(), history.size());
  }
  UNITS_RETURN_IF_ERROR(pipeline->SaveJson(args.flags.at("out")));
  std::printf("saved %s\n", args.flags.at("out").c_str());
  return Status::Ok();
}

Status CmdPredict(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "model"));
  UNITS_ASSIGN_OR_RETURN(data::TimeSeriesDataset dataset, LoadData(args));
  UNITS_ASSIGN_OR_RETURN(std::unique_ptr<core::UnitsPipeline> pipeline,
                         core::UnitsPipeline::LoadJson(
                             args.flags.at("model")));
  UNITS_ASSIGN_OR_RETURN(core::TaskResult result,
                         pipeline->Predict(dataset.values()));

  const std::string out = FlagOr(args, "out", "");
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      return Status::IoError("cannot open " + out);
    }
  }
  auto emit = [&](const std::string& line) {
    if (!out.empty()) {
      file << line << "\n";
    } else {
      std::printf("%s\n", line.c_str());
    }
  };
  if (!result.labels.empty()) {
    emit("index,label");
    for (size_t i = 0; i < result.labels.size(); ++i) {
      emit(StrCat(i, ",", result.labels[i]));
    }
  } else if (result.predictions.numel() > 0) {
    emit("index,values...");
    const int64_t n = result.predictions.dim(0);
    const int64_t per_row = result.predictions.numel() / n;
    for (int64_t i = 0; i < n; ++i) {
      std::string line = std::to_string(i);
      for (int64_t j = 0; j < per_row; ++j) {
        line += StrCat(",", result.predictions[i * per_row + j]);
      }
      emit(line);
    }
  }
  if (!out.empty()) {
    std::printf("wrote predictions to %s\n", out.c_str());
  }
  return Status::Ok();
}

Status CmdQuantize(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "model"));
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "out"));
  UNITS_ASSIGN_OR_RETURN(
      std::unique_ptr<core::UnitsPipeline> pipeline,
      core::UnitsPipeline::LoadJson(args.flags.at("model")));
  const int64_t layers = pipeline->QuantizeInt8();
  if (layers == 0) {
    return Status::FailedPrecondition("model has no quantizable layers");
  }
  // The saved file keeps the fp32 weights and records precision=int8;
  // loading it re-runs the (deterministic) quantization.
  UNITS_RETURN_IF_ERROR(pipeline->SaveJson(args.flags.at("out")));
  std::printf("quantized %lld layers to int8; wrote %s\n",
              static_cast<long long>(layers), args.flags.at("out").c_str());
  return Status::Ok();
}

Status CmdInfo(const Args& args) {
  UNITS_RETURN_IF_ERROR(RequireFlag(args, "model"));
  UNITS_ASSIGN_OR_RETURN(json::JsonValue model,
                         json::ParseFile(args.flags.at("model")));
  // The file is untrusted input: every field access goes through Find so a
  // truncated or hand-edited file reports an error instead of aborting.
  if (!model.is_object()) {
    return Status::InvalidArgument("not a units-pipeline file");
  }
  auto missing = [](const std::string& key) {
    return Status::InvalidArgument("not a units-pipeline file (missing '" +
                                   key + "')");
  };
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* config,
                         model.Find("config"));
  if (!config->is_object()) {
    return missing("config");
  }
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* format,
                         model.Find("format"));
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* version,
                         model.Find("version"));
  if (!format->is_string() || !version->is_number()) {
    return missing("format/version");
  }
  std::printf("format:   %s (version %lld)\n", format->AsString().c_str(),
              static_cast<long long>(version->AsInt()));
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* templates,
                         config->Find("templates"));
  if (!templates->is_array()) {
    return missing("config.templates");
  }
  std::printf("templates:");
  for (size_t i = 0; i < templates->size(); ++i) {
    if (!(*templates)[i].is_string()) {
      return missing("config.templates");
    }
    std::printf(" %s", (*templates)[i].AsString().c_str());
  }
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* fusion,
                         config->Find("fusion"));
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* task, config->Find("task"));
  if (!fusion->is_string() || !task->is_string()) {
    return missing("config.fusion/task");
  }
  std::printf("\nfusion:   %s\n", fusion->AsString().c_str());
  std::printf("task:     %s\n", task->AsString().c_str());
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* channels,
                         config->Find("input_channels"));
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* pretrained,
                         model.Find("pretrained"));
  if (!channels->is_number() || !pretrained->is_bool()) {
    return missing("input_channels/pretrained");
  }
  std::printf("channels: %lld\n",
              static_cast<long long>(channels->AsInt()));
  std::printf("pretrained: %s\n", pretrained->AsBool() ? "yes" : "no");
  std::printf("precision: %s\n",
              model.Contains("precision") && model.at("precision").is_string()
                  ? model.at("precision").AsString().c_str()
                  : "fp32");
  std::printf("task state: %s\n",
              model.Contains("task_state") ? "fitted" : "absent");
  // Parameter count across encoders.
  int64_t total_params = 0;
  UNITS_ASSIGN_OR_RETURN(const json::JsonValue* encoders,
                         model.Find("encoders"));
  if (!encoders->is_array()) {
    return missing("encoders");
  }
  for (size_t e = 0; e < encoders->size(); ++e) {
    if (!(*encoders)[e].is_object()) {
      return missing("encoders");
    }
    for (const auto& [name, tensor] : (*encoders)[e].items()) {
      if (!tensor.is_object() || !tensor.Contains("data") ||
          !tensor.at("data").is_array()) {
        return Status::InvalidArgument("malformed tensor '" + name +
                                       "' in encoder state");
      }
      total_params += static_cast<int64_t>(tensor.at("data").size());
    }
  }
  std::printf("encoder parameters: %lld\n",
              static_cast<long long>(total_params));
  return Status::Ok();
}

int Usage() {
  std::printf(
      "usage: units_cli <command> [flags]\n"
      "commands:\n"
      "  list                                  show registered components\n"
      "  pretrain --data F --out M [--format ucr|long] [--window W]\n"
      "           [--templates a,b] [--fusion f] [--task t] [--set k=v]\n"
      "  finetune --model M --data F --task t --out M2 [--set k=v]\n"
      "  predict  --model M --data F [--out pred.csv]\n"
      "  quantize --model M --out M2   (int8 per-channel, DESIGN.md §17)\n"
      "  info     --model M\n");
  return 2;
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const Args args = ParseArgs(argc, argv);
  Status status;
  if (args.command == "list") {
    return CmdList();
  } else if (args.command == "pretrain") {
    status = CmdPretrain(args);
  } else if (args.command == "finetune") {
    status = CmdFinetune(args);
  } else if (args.command == "predict") {
    status = CmdPredict(args);
  } else if (args.command == "quantize") {
    status = CmdQuantize(args);
  } else if (args.command == "info") {
    status = CmdInfo(args);
  } else {
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace units::cli

int main(int argc, char** argv) {
  // Every failure must reach the user as stderr + non-zero exit, including
  // anything the standard library throws (bad_alloc, filesystem errors).
  try {
    return units::cli::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
