// units_router — shard router front tier: spawns a pool of units_serve
// worker processes, shards the model namespace across them by consistent
// hashing on the model name, health-checks every worker, and rebalances
// models when a worker dies (see DESIGN.md §14 and router/router.h).
//
// Clients speak the same protocols a worker does — NDJSON lines or
// HTTP/1.1 (POST /v1/predict, GET /v1/stats, GET /v1/healthz), sniffed
// per connection — so moving from one worker to a sharded pool is a
// matter of pointing at a different port.
//
//   units_router [--port N] [--shards N] [--worker-bin PATH]
//                [--health-interval-s X] [--health-timeout-s X]
//                [--retries N] [--drain-timeout-s X]
//                [--worker-arg FLAG ...]
//
// --worker-arg values are passed through to every spawned worker verbatim
// (repeat the flag: --worker-arg --max-batch --worker-arg 16). The worker
// binary defaults to units_serve next to this executable; UNITS_SERVE_BIN
// overrides it. Like units_serve, the bound port is announced on stderr
// as "listening on port P", and SIGTERM/SIGINT drain gracefully: answer
// what is in flight, SIGTERM the workers, reap them, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/logging.h"
#include "router/router.h"

namespace units::router {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: units_router [--port N] [--shards N] [--worker-bin PATH]\n"
      "                    [--health-interval-s X] [--health-timeout-s X]\n"
      "                    [--retries N] [--drain-timeout-s X]\n"
      "                    [--worker-arg FLAG ...]\n"
      "shards the NDJSON/HTTP serving protocol across a pool of\n"
      "units_serve workers; see router/router.h\n");
  return 2;
}

bool ParseInt(const std::string& value, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

Router* g_router = nullptr;

void HandleDrainSignal(int) {
  if (g_router != nullptr) {
    g_router->RequestDrain();
  }
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  Router::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--port") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 0 || n > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 2;
      }
      options.port = static_cast<int>(n);
    } else if (flag == "--shards") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1 || n > 256) {
        std::fprintf(stderr, "error: --shards expects 1..256\n");
        return 2;
      }
      options.num_shards = static_cast<int>(n);
    } else if (flag == "--worker-bin") {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --worker-bin expects a path\n");
        return 2;
      }
      options.worker_binary = value;
    } else if (flag == "--health-interval-s") {
      const char* value = next();
      double s = 0.0;
      if (value == nullptr || !ParseDouble(value, &s) || s <= 0.0) {
        std::fprintf(stderr,
                     "error: --health-interval-s expects a positive number\n");
        return 2;
      }
      options.health_interval_s = s;
    } else if (flag == "--health-timeout-s") {
      const char* value = next();
      double s = 0.0;
      if (value == nullptr || !ParseDouble(value, &s) || s <= 0.0) {
        std::fprintf(stderr,
                     "error: --health-timeout-s expects a positive number\n");
        return 2;
      }
      options.health_timeout_s = s;
    } else if (flag == "--retries") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 0) {
        std::fprintf(stderr, "error: --retries expects a non-negative int\n");
        return 2;
      }
      options.max_retries = static_cast<int>(n);
    } else if (flag == "--drain-timeout-s") {
      const char* value = next();
      double s = 0.0;
      if (value == nullptr || !ParseDouble(value, &s) || s <= 0.0) {
        std::fprintf(stderr,
                     "error: --drain-timeout-s expects a positive number\n");
        return 2;
      }
      options.drain_timeout_s = s;
    } else if (flag == "--worker-arg") {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --worker-arg expects a value\n");
        return 2;
      }
      options.worker_args.push_back(value);
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return Usage();
    }
  }

  Router router(options);
  const Status status = router.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on port %d\n", router.bound_port());
  g_router = &router;
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  std::signal(SIGPIPE, SIG_IGN);
  const int code = router.Run();
  g_router = nullptr;
  return code;
}

}  // namespace
}  // namespace units::router

int main(int argc, char** argv) { return units::router::Main(argc, argv); }
