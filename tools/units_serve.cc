// units_serve — inference serving front end: loads fitted pipeline files
// into a model registry and answers newline-delimited JSON requests,
// micro-batching concurrent predicts per model on a shared scheduler (see
// DESIGN.md §9/§12 and serve/server.h for the protocol).
//
// Two transports share the protocol and the batcher:
//   default      NDJSON on stdin/stdout (one client)
//   --port N     TCP listener (many concurrent clients; 0 = ephemeral
//                port, printed to stderr as "listening on port P")
//
//   units_serve [--model name=fitted.json ...] [--port N]
//               [--max-batch N] [--max-delay-ms X] [--workers N]
//               [--max-queue N] [--request-timeout-ms X]
//               [--idle-timeout-s X] [--threads N]
//               [--max-streams N] [--stream-idle-timeout-s X]
//
// Example session:
//   {"op": "load", "model": "ecg", "path": "fitted.json"}
//   {"op": "predict", "model": "ecg", "values": [0.1, 0.2, ...]}
//   {"op": "stream_open", "model": "ecg", "window": 32}
//   {"op": "stream_feed", "stream": 0, "values": [0.1, 0.2, ...]}
//   {"op": "stream_close", "stream": 0}
//   {"op": "stats"}
//   {"op": "quit"}
//
// In socket mode SIGTERM/SIGINT trigger a graceful drain: stop accepting,
// answer everything admitted, flush, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/parallel.h"
#include "serve/server.h"
#include "serve/socket_server.h"

namespace units::serve {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: units_serve [--model name=fitted.json ...] [--port N]\n"
      "                   [--max-batch N] [--max-delay-ms X] [--workers N]\n"
      "                   [--max-queue N] [--request-timeout-ms X]\n"
      "                   [--idle-timeout-s X] [--threads N]\n"
      "                   [--max-streams N] [--stream-idle-timeout-s X]\n"
      "speaks newline-delimited JSON on stdin/stdout, or over TCP with\n"
      "--port; see serve/server.h for the protocol\n");
  return 2;
}

/// Strict integer/double flag parsing: the whole value must consume.
bool ParseInt(const std::string& value, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

SocketServer* g_socket_server = nullptr;

/// SIGTERM/SIGINT → graceful drain. RequestDrain is async-signal-safe
/// (an atomic store plus a pipe write).
void HandleDrainSignal(int) {
  if (g_socket_server != nullptr) {
    g_socket_server->RequestDrain();
  }
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::vector<std::pair<std::string, std::string>> preload;  // name, path
  bool socket_mode = false;
  SocketServer::Options options;  // superset of the stdin-mode options
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* value = next();
      const std::string spec = value == nullptr ? "" : value;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "error: --model expects name=path, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preload.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--port") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 0 || n > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 2;
      }
      socket_mode = true;
      options.port = static_cast<int>(n);
    } else if (flag == "--max-batch") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1) {
        std::fprintf(stderr, "error: --max-batch expects a positive int\n");
        return 2;
      }
      options.batcher.max_batch_size = n;
    } else if (flag == "--max-delay-ms") {
      const char* value = next();
      double ms = 0.0;
      if (value == nullptr || !ParseDouble(value, &ms) || ms < 0.0) {
        std::fprintf(stderr,
                     "error: --max-delay-ms expects a non-negative number\n");
        return 2;
      }
      options.batcher.max_delay_ms = ms;
    } else if (flag == "--workers") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1) {
        std::fprintf(stderr, "error: --workers expects a positive int\n");
        return 2;
      }
      options.batcher.num_workers = static_cast<int>(n);
    } else if (flag == "--max-queue") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1) {
        std::fprintf(stderr, "error: --max-queue expects a positive int\n");
        return 2;
      }
      options.admission.max_queue = n;
    } else if (flag == "--request-timeout-ms") {
      const char* value = next();
      double ms = 0.0;
      if (value == nullptr || !ParseDouble(value, &ms) || ms < 0.0) {
        std::fprintf(
            stderr,
            "error: --request-timeout-ms expects a non-negative number\n");
        return 2;
      }
      options.admission.request_timeout_ms = ms;
    } else if (flag == "--idle-timeout-s") {
      const char* value = next();
      double s = 0.0;
      if (value == nullptr || !ParseDouble(value, &s) || s < 0.0) {
        std::fprintf(
            stderr,
            "error: --idle-timeout-s expects a non-negative number\n");
        return 2;
      }
      options.idle_timeout_s = s;
    } else if (flag == "--max-streams") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1) {
        std::fprintf(stderr, "error: --max-streams expects a positive int\n");
        return 2;
      }
      options.streaming.max_sessions = n;
    } else if (flag == "--stream-idle-timeout-s") {
      const char* value = next();
      double s = 0.0;
      if (value == nullptr || !ParseDouble(value, &s) || s < 0.0) {
        std::fprintf(
            stderr,
            "error: --stream-idle-timeout-s expects a non-negative number\n");
        return 2;
      }
      options.streaming.idle_timeout_s = s;
    } else if (flag == "--threads") {
      const char* value = next();
      int64_t n = 0;
      if (value == nullptr || !ParseInt(value, &n) || n < 1) {
        std::fprintf(stderr, "error: --threads expects a positive int\n");
        return 2;
      }
      base::SetNumThreads(static_cast<int>(n));
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return Usage();
    }
  }

  ModelRegistry registry;
  for (const auto& [name, path] : preload) {
    const Status status = registry.Load(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: loading '%s' from %s: %s\n", name.c_str(),
                   path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded '%s' from %s\n", name.c_str(), path.c_str());
  }

  if (socket_mode) {
    SocketServer server(&registry, options);
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "listening on port %d\n", server.bound_port());
    g_socket_server = &server;
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    const int code = server.Run();
    g_socket_server = nullptr;
    return code;
  }

  JsonLineServer::Options stdin_options;
  stdin_options.batcher = options.batcher;
  stdin_options.admission = options.admission;
  stdin_options.session = options.session;
  stdin_options.streaming = options.streaming;
  JsonLineServer server(&registry, stdin_options);
  return server.Run(std::cin, std::cout);
}

}  // namespace
}  // namespace units::serve

int main(int argc, char** argv) { return units::serve::Main(argc, argv); }
